//! Content-hashed result cache.
//!
//! Every evaluation a sweep performs — a simulator measurement, a model
//! solve, a profiling run — is keyed by an FNV-1a hash of its *complete*
//! input description (cluster config, job spec, N, reps, seed, backend
//! tag). Because evaluations are deterministic functions of those
//! inputs, a key hit can return the stored floats verbatim: repeated
//! sweeps, overlapping scenarios, and the estimator axis (whose points
//! share the underlying solve) all skip straight to the answer.
//!
//! The cache is thread-safe (a mutexed map — evaluations dwarf lock
//! costs by many orders of magnitude) and can persist to a simple
//! line-oriented text file so sweeps skip work across processes too.

use std::collections::HashMap;
use std::io::Write as _;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Incremental FNV-1a content hasher for cache keys.
///
/// Stable across runs, platforms, and — unlike `DefaultHasher` — Rust
/// releases, so persisted caches stay valid.
#[derive(Debug, Clone)]
pub struct KeyHasher(u64);

impl Default for KeyHasher {
    fn default() -> Self {
        KeyHasher::new()
    }
}

impl KeyHasher {
    /// Start a fresh key.
    pub fn new() -> KeyHasher {
        KeyHasher(0xcbf29ce484222325)
    }

    /// Mix raw bytes.
    pub fn bytes(mut self, bytes: &[u8]) -> Self {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x100000001b3);
        }
        self
    }

    /// Mix a string (length-prefixed so concatenations can't collide).
    pub fn str(self, s: &str) -> Self {
        self.u64(s.len() as u64).bytes(s.as_bytes())
    }

    /// Mix a `u64`.
    pub fn u64(self, v: u64) -> Self {
        self.bytes(&v.to_le_bytes())
    }

    /// Mix an `f64` by bit pattern (bit-exact, no rounding).
    pub fn f64(self, v: f64) -> Self {
        self.u64(v.to_bits())
    }

    /// Mix a `bool`.
    pub fn bool(self, v: bool) -> Self {
        self.u64(v as u64)
    }

    /// Finish and return the 64-bit key.
    pub fn finish(self) -> u64 {
        self.0
    }
}

/// Thread-safe content-addressed store of evaluation results (flat
/// `f64` records).
#[derive(Debug, Default)]
pub struct ResultCache {
    map: Mutex<HashMap<u64, Arc<Vec<f64>>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

/// Hit/miss counters of a [`ResultCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the store.
    pub hits: u64,
    /// Lookups that had to evaluate.
    pub misses: u64,
    /// Entries currently stored.
    pub entries: usize,
}

impl ResultCache {
    /// An empty cache.
    pub fn new() -> ResultCache {
        ResultCache::default()
    }

    /// Return the record for `key`, computing and storing it on a miss.
    ///
    /// On concurrent misses for the same key the first inserted record
    /// wins and every caller receives that same allocation, so results
    /// are bit-identical regardless of interleaving.
    pub fn get_or_compute<F: FnOnce() -> Vec<f64>>(&self, key: u64, compute: F) -> Arc<Vec<f64>> {
        if let Some(v) = self.map.lock().unwrap().get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(v);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let value = Arc::new(compute());
        let mut map = self.map.lock().unwrap();
        Arc::clone(map.entry(key).or_insert(value))
    }

    /// Look up `key` without computing.
    pub fn get(&self, key: u64) -> Option<Arc<Vec<f64>>> {
        self.map.lock().unwrap().get(&key).map(Arc::clone)
    }

    /// Counters and size.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self.map.lock().unwrap().len(),
        }
    }

    /// Reset the hit/miss counters (entries are kept).
    pub fn reset_stats(&self) {
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
    }

    /// Persist every entry to `path` as `key,v0,v1,...` lines (floats as
    /// hex bit patterns, so round-trips are bit-exact).
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        let map = self.map.lock().unwrap();
        let mut out = std::io::BufWriter::new(std::fs::File::create(path)?);
        writeln!(out, "mr2-scenario-cache v1")?;
        let mut keys: Vec<&u64> = map.keys().collect();
        keys.sort_unstable();
        for k in keys {
            write!(out, "{k:016x}")?;
            for v in map[k].iter() {
                write!(out, ",{:016x}", v.to_bits())?;
            }
            writeln!(out)?;
        }
        out.flush()
    }

    /// Merge entries from a file written by [`ResultCache::save`].
    /// Rejects files whose version header doesn't match (decoding a
    /// different format would silently yield wrong floats under valid
    /// keys); malformed lines within a valid file are skipped and
    /// existing entries are kept.
    pub fn load(&self, path: &Path) -> std::io::Result<usize> {
        let body = std::fs::read_to_string(path)?;
        let mut lines = body.lines();
        if lines.next() != Some("mr2-scenario-cache v1") {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("{}: not a mr2-scenario-cache v1 file", path.display()),
            ));
        }
        let mut loaded = 0;
        let mut map = self.map.lock().unwrap();
        for line in lines {
            let mut fields = line.split(',');
            let Some(key) = fields.next().and_then(|k| u64::from_str_radix(k, 16).ok()) else {
                continue;
            };
            let values: Option<Vec<f64>> = fields
                .map(|f| u64::from_str_radix(f, 16).ok().map(f64::from_bits))
                .collect();
            if let Some(values) = values {
                map.entry(key).or_insert_with(|| {
                    loaded += 1;
                    Arc::new(values)
                });
            }
        }
        Ok(loaded)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_hasher_distinguishes_field_order_and_values() {
        let a = KeyHasher::new().u64(1).u64(2).finish();
        let b = KeyHasher::new().u64(2).u64(1).finish();
        assert_ne!(a, b);
        let c = KeyHasher::new().str("ab").str("c").finish();
        let d = KeyHasher::new().str("a").str("bc").finish();
        assert_ne!(c, d, "length prefix must prevent concatenation collisions");
        assert_ne!(
            KeyHasher::new().f64(1.0).finish(),
            KeyHasher::new().f64(-1.0).finish()
        );
    }

    #[test]
    fn key_hasher_is_stable() {
        // Pinned value: persisted caches depend on this never changing.
        assert_eq!(KeyHasher::new().str("probe").u64(7).finish(), {
            let mut h: u64 = 0xcbf29ce484222325;
            for b in 5u64
                .to_le_bytes()
                .iter()
                .chain(b"probe")
                .chain(&7u64.to_le_bytes())
            {
                h ^= *b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
            h
        });
    }

    #[test]
    fn hit_returns_identical_allocation() {
        let cache = ResultCache::new();
        let first = cache.get_or_compute(42, || vec![1.5, 2.5]);
        let second = cache.get_or_compute(42, || panic!("must not recompute"));
        assert!(Arc::ptr_eq(&first, &second));
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
    }

    #[test]
    fn save_load_roundtrip_is_bit_exact() {
        let cache = ResultCache::new();
        let odd = f64::from_bits(0x7ff0000000000001); // NaN payload survives
        cache.get_or_compute(1, || vec![0.1 + 0.2, -0.0, odd]);
        cache.get_or_compute(2, Vec::new);
        let path = std::env::temp_dir().join("mr2-scenario-cache-test.txt");
        cache.save(&path).unwrap();

        let fresh = ResultCache::new();
        assert_eq!(fresh.load(&path).unwrap(), 2);
        let v = fresh.get(1).unwrap();
        assert_eq!(v[0].to_bits(), (0.1f64 + 0.2).to_bits());
        assert_eq!(v[1].to_bits(), (-0.0f64).to_bits());
        assert_eq!(v[2].to_bits(), odd.to_bits());
        assert_eq!(fresh.get(2).unwrap().len(), 0);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn load_rejects_wrong_header() {
        let path = std::env::temp_dir().join("mr2-scenario-cache-badheader.txt");
        std::fs::write(
            &path,
            "mr2-scenario-cache v2\n0000000000000001,3ff0000000000000\n",
        )
        .unwrap();
        let cache = ResultCache::new();
        let err = cache.load(&path).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        assert_eq!(cache.stats().entries, 0, "nothing merged from a bad file");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn concurrent_misses_converge_to_one_record() {
        let cache = Arc::new(ResultCache::new());
        let results: Vec<Arc<Vec<f64>>> = std::thread::scope(|s| {
            (0..8)
                .map(|_| {
                    let cache = Arc::clone(&cache);
                    s.spawn(move || cache.get_or_compute(7, || vec![3.25]))
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        for r in &results {
            assert!(Arc::ptr_eq(r, &results[0]));
        }
        assert_eq!(cache.stats().entries, 1);
    }
}
