//! Minimal hand-rolled JSON — the build environment has no crates.io
//! access (the `crates/compat` situation), so the workspace carries its
//! own encoder/decoder. It lives here (rather than in `mr2-serve`,
//! where it originated) because the scenario engine's trace ingestion
//! ([`crate::trace`]) parses JSON-lines job histories with it; the
//! service re-exports this module for its request/response types.
//!
//! The subset is complete for RFC 8259 documents: objects, arrays,
//! strings (with escapes and `\uXXXX`, including surrogate pairs),
//! numbers as `f64`, booleans, null. Integers round-trip exactly up to
//! 2^53, which covers every field the API carries (byte sizes, seeds,
//! counts, timestamps). Rendering is compact; non-finite numbers render
//! as `null` (JSON has no NaN/Infinity).

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (JSON doesn't distinguish integers).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. Sorted keys (BTreeMap) make rendering deterministic.
    Obj(BTreeMap<String, Json>),
}

/// Parse error: a message and the byte offset it occurred at.
#[derive(Debug, Clone, PartialEq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset into the input.
    pub at: usize,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.message, self.at)
    }
}

impl std::error::Error for JsonError {}

/// Nesting depth bound: hostile inputs must not overflow the stack.
const MAX_DEPTH: usize = 64;

impl Json {
    /// Parse a complete JSON document (trailing whitespace allowed,
    /// trailing garbage rejected).
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(v)
    }

    /// Render compactly (no whitespace), deterministically (object keys
    /// are sorted).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(v) => render_number(*v, out),
            Json::Str(s) => render_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render_string(k, out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }

    /// Build an object from key/value pairs.
    pub fn obj<const N: usize>(pairs: [(&str, Json); N]) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Object field lookup; `None` on non-objects and missing keys.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// The value as a float.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a non-negative integer (rejects fractions and
    /// anything beyond exact `f64` integer range).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(v) if v.fract() == 0.0 && (0.0..=9.007_199_254_740_992e15).contains(v) => {
                Some(*v as u64)
            }
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// A float rendered as JSON (finite → number, else null).
    pub fn num(v: f64) -> Json {
        Json::Num(v)
    }

    /// A string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Num(v)
    }
}

impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::Num(v as f64)
    }
}

impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::Num(v as f64)
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}

fn render_number(v: f64, out: &mut String) {
    if !v.is_finite() {
        out.push_str("null");
    } else if v == v.trunc() && v.abs() < 9.007_199_254_740_992e15 {
        let _ = write!(out, "{}", v as i64);
    } else {
        // Rust's shortest-roundtrip float formatting is valid JSON.
        let _ = write!(out, "{v}");
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            message: message.into(),
            at: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8, what: &str) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected {what}")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected `{text}`")))
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.eat(b'{', "`{`")?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':', "`:` after object key")?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.eat(b'[', "`[`")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"', "`\"`")?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Copy unescaped runs wholesale (UTF-8 passes through).
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require the low half.
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.eat(b'u', "`\\u` low surrogate")?;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    let c = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(c)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(hi)
                            };
                            out.push(c.ok_or_else(|| self.err("invalid \\u escape"))?);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => return Err(self.err("control character in string")),
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let chunk = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let s = std::str::from_utf8(chunk).map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii digits");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("false").unwrap(), Json::Bool(false));
        assert_eq!(Json::parse("-12.5e2").unwrap(), Json::Num(-1250.0));
        assert_eq!(Json::parse("\"hi\"").unwrap(), Json::Str("hi".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let v = Json::parse(r#"{"a":[1,2,{"b":null}],"c":"x"}"#).unwrap();
        assert_eq!(v.get("c").unwrap().as_str(), Some("x"));
        let arr = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(arr[1].as_u64(), Some(2));
        assert_eq!(arr[2].get("b"), Some(&Json::Null));
    }

    #[test]
    fn string_escapes_roundtrip() {
        let original = "line1\nline2\t\"quoted\" \\ / \u{08}\u{0c} héllo 🦀";
        let rendered = Json::Str(original.into()).render();
        assert_eq!(Json::parse(&rendered).unwrap().as_str(), Some(original));
        // Explicit \u escapes, including a surrogate pair.
        let v = Json::parse(r#""\u0041\ud83e\udd80\u00e9""#).unwrap();
        assert_eq!(v.as_str(), Some("A🦀é"));
    }

    #[test]
    fn renders_numbers_cleanly() {
        assert_eq!(Json::Num(4.0).render(), "4");
        assert_eq!(Json::Num(-0.5).render(), "-0.5");
        assert_eq!(Json::Num(5368709120.0).render(), "5368709120"); // 5 GB
        assert_eq!(Json::Num(f64::NAN).render(), "null");
        assert_eq!(Json::Num(f64::INFINITY).render(), "null");
    }

    #[test]
    fn render_parse_roundtrip_is_exact() {
        let v = Json::obj([
            ("nodes", Json::Arr(vec![4u64.into(), 8u64.into()])),
            ("ratio", Json::Num(0.1 + 0.2)),
            ("name", Json::str("sweep-α")),
            ("deep", Json::obj([("ok", true.into())])),
            ("none", Json::Null),
        ]);
        assert_eq!(Json::parse(&v.render()).unwrap(), v);
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "}",
            "[1,",
            "{\"a\":}",
            "tru",
            "\"unterminated",
            "1 2",
            "{\"a\":1,}",
            "[01x]",
            "\"\\q\"",
            "\"\\ud800\"",
        ] {
            assert!(Json::parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn rejects_pathological_nesting() {
        let deep = "[".repeat(100) + &"]".repeat(100);
        let err = Json::parse(&deep).unwrap_err();
        assert!(err.message.contains("nesting"));
    }

    #[test]
    fn u64_accessor_rejects_fractions_and_negatives() {
        assert_eq!(Json::Num(4.5).as_u64(), None);
        assert_eq!(Json::Num(-1.0).as_u64(), None);
        assert_eq!(Json::Num(0.0).as_u64(), Some(0));
        assert_eq!(Json::Str("4".into()).as_u64(), None);
    }
}
