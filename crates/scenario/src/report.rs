//! The comparison layer: join analytic estimates against simulator
//! ground truth and summarize accuracy per estimator series — aggregate
//! and per job class — reusing `mr2_model::ErrorBand` (the paper's §5.2
//! "error between x% and y%" statistic).

use std::fmt::Write as _;

use mr2_model::error::{relative_error, ErrorBand};

use crate::runner::{select, select_class, SweepResult};
use crate::spec::EstimatorKind;

/// Accuracy of one estimator series over a sweep (aggregate responses).
#[derive(Debug, Clone, Copy)]
pub struct SeriesBand {
    /// Which series.
    pub estimator: EstimatorKind,
    /// Error band over every point with both backends present.
    pub band: ErrorBand,
}

/// Accuracy of one estimator series for one job class (mix entry
/// label) over a sweep.
#[derive(Debug, Clone)]
pub struct ClassBand {
    /// The class label ([`crate::spec::MixEntry::label`] — job kind and
    /// input size; copy counts aggregate).
    pub class: String,
    /// Which series.
    pub estimator: EstimatorKind,
    /// Error band over every matching class occurrence with both
    /// backends present.
    pub band: ErrorBand,
}

/// Per-estimator error bands over every point of `sweep` that has both
/// an analytic estimate and a simulator measurement, judged on the
/// aggregate (whole-mix) response. Returns an empty vector when no
/// point has both (single-backend sweeps).
///
/// Bands are computed for every series in [`EstimatorKind::ALL`] — not
/// just the swept `estimators` axis — since the model solve carries all
/// four.
pub fn error_bands(sweep: &SweepResult) -> Vec<SeriesBand> {
    // When a series is on the swept estimator axis its band covers that
    // series' own points; off-axis series are judged over all points.
    let pairs_for = |e: EstimatorKind| -> Vec<(f64, f64)> {
        let on_axis = sweep.points.iter().any(|q| q.point.estimator == e);
        sweep
            .points
            .iter()
            .filter(|p| !on_axis || p.point.estimator == e)
            .filter_map(|p| Some((select(p.model.as_ref()?, e), p.measured()?)))
            .collect()
    };
    EstimatorKind::ALL
        .into_iter()
        .filter_map(|e| {
            let pairs = pairs_for(e);
            (!pairs.is_empty()).then(|| SeriesBand {
                estimator: e,
                band: ErrorBand::over(&pairs),
            })
        })
        .collect()
}

/// Per-class error bands: for every distinct mix-entry label in the
/// sweep (first-appearance order) and every estimator series, the band
/// over that class's estimate-vs-measurement pairs across all points
/// carrying both backends. Judged over every point regardless of the
/// estimator axis — per-class accuracy is a property of the class, not
/// of which series a point happens to report.
pub fn class_error_bands(sweep: &SweepResult) -> Vec<ClassBand> {
    let mut labels: Vec<String> = Vec::new();
    for p in &sweep.points {
        for e in &p.point.mix.entries {
            let l = e.label();
            if !labels.contains(&l) {
                labels.push(l);
            }
        }
    }
    let mut out = Vec::new();
    for label in labels {
        for est in EstimatorKind::ALL {
            let mut pairs = Vec::new();
            for p in &sweep.points {
                let (Some(model), Some(sim)) = (p.model.as_ref(), p.sim.as_ref()) else {
                    continue;
                };
                for (i, e) in p.point.mix.entries.iter().enumerate() {
                    if e.label() != label {
                        continue;
                    }
                    if let (Some(cm), Some(&sm)) =
                        (model.per_class.get(i), sim.per_class_median.get(i))
                    {
                        pairs.push((select_class(cm, est), sm));
                    }
                }
            }
            if !pairs.is_empty() {
                out.push(ClassBand {
                    class: label.clone(),
                    estimator: est,
                    band: ErrorBand::over(&pairs),
                });
            }
        }
    }
    out
}

/// Markdown report: one row per point (configuration, estimate,
/// measurement, signed error) followed by the aggregate and per-class
/// error bands.
pub fn render_report(sweep: &SweepResult) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "## scenario `{}` — {} points",
        sweep.name,
        sweep.points.len()
    );
    let _ = writeln!(
        out,
        "| # | nodes | block | sched | mix | N | arrivals | fail | slow | estimator | estimate (s) | measured (s) | err | mk est (s) | mk meas (s) |"
    );
    let _ = writeln!(
        out,
        "|---|---|---|---|---|---|---|---|---|---|---|---|---|---|---|"
    );
    for p in &sweep.points {
        let fmt = |v: Option<f64>| v.map_or("—".to_string(), |v| format!("{v:.1}"));
        let err = match (p.estimate(), p.measured()) {
            (Some(e), Some(m)) => format!("{:+.1}%", relative_error(e, m) * 100.0),
            _ => "—".to_string(),
        };
        let _ = writeln!(
            out,
            "| {} | {} | {} | {:?} | {} | {} | {} | {} | {} | {} | {} | {} | {err} | {} | {} |",
            p.point.index,
            p.point.nodes,
            p.point.block_mb,
            p.point.scheduler,
            p.point.mix.name(),
            p.point.total_jobs(),
            p.point.arrivals_name(),
            p.point.map_failure_prob,
            p.point.slow_node_factor,
            p.point.estimator.name(),
            fmt(p.estimate()),
            fmt(p.measured()),
            fmt(p.estimate_makespan()),
            fmt(p.measured_makespan()),
        );
    }
    let bands = error_bands(sweep);
    if !bands.is_empty() {
        let _ = writeln!(out, "\n### model vs simulator (abs. relative error)");
        let _ = writeln!(out, "| series | band | mean | points |");
        let _ = writeln!(out, "|---|---|---|---|");
        for b in bands {
            let _ = writeln!(
                out,
                "| {} | {} | {:.1}% | {} |",
                b.estimator.name(),
                b.band.as_percent_range(),
                b.band.mean * 100.0,
                b.band.count
            );
        }
    }
    let class_bands = class_error_bands(sweep);
    if !class_bands.is_empty() {
        let _ = writeln!(out, "\n### per-class model vs simulator");
        let _ = writeln!(out, "| class | series | band | mean | points |");
        let _ = writeln!(out, "|---|---|---|---|---|");
        for b in class_bands {
            let _ = writeln!(
                out,
                "| {} | {} | {} | {:.1}% | {} |",
                b.class,
                b.estimator.name(),
                b.band.as_percent_range(),
                b.band.mean * 100.0,
                b.band.count
            );
        }
    }
    out
}

/// CSV of a sweep: one row per point, columns stable for downstream
/// tooling. The `mix` column carries the resolved mix descriptor
/// (`2xwordcount@1024MB+1xgrep@1024MB`); `arrivals` the schedule name
/// (`batch`, `stagger@500ms`, `trace[12]`, `poisson@0.1/s`). Response
/// time and makespan are separate columns — they diverge under
/// non-batch arrivals. Open-arrival points additionally fill
/// `arrival_rate` (jobs/s) and the open-model tail
/// (`bottleneck_utilization`, `knee_rate`, `saturation_rate`); closed
/// points leave those cells empty.
pub fn to_csv(sweep: &SweepResult) -> String {
    let mut out = String::from(
        "index,nodes,block_mb,container_mb,scheduler,mix,total_jobs,arrivals,arrival_rate,map_failure_prob,slow_node_factor,estimator,estimate,measured,estimate_makespan,measured_makespan,bottleneck_utilization,knee_rate,saturation_rate\n",
    );
    for p in &sweep.points {
        let num = |v: Option<f64>| v.map_or(String::new(), |v| format!("{v:.6}"));
        let open = p.model.as_ref().and_then(|m| m.open);
        let _ = writeln!(
            out,
            "{},{},{},{},{:?},{},{},{},{},{},{},{},{},{},{},{},{},{},{}",
            p.point.index,
            p.point.nodes,
            p.point.block_mb,
            p.point.container_mb,
            p.point.scheduler,
            p.point.mix.name(),
            p.point.total_jobs(),
            p.point.arrivals_name(),
            num(p.point.arrival_rate),
            p.point.map_failure_prob,
            p.point.slow_node_factor,
            p.point.estimator.name(),
            num(p.estimate()),
            num(p.measured()),
            num(p.estimate_makespan()),
            num(p.measured_makespan()),
            num(open.map(|o| o.bottleneck_utilization)),
            num(open.map(|o| o.knee_rate)),
            num(open.map(|o| o.saturation_rate)),
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{PointResult, SimResult};
    use crate::spec::{ArrivalSchedule, EstimatorKind, EvalPoint, JobKind, MixEntry, WorkloadMix};
    use mapreduce_sim::{SchedulerPolicy, GB};
    use mr2_model::{ClassPoint, ModelPoint};

    fn fake_point(index: usize, estimator: EstimatorKind) -> PointResult {
        PointResult {
            point: EvalPoint {
                index,
                nodes: 4,
                block_mb: 128,
                container_mb: 1024,
                scheduler: SchedulerPolicy::CapacityFifo,
                mix: WorkloadMix::new([
                    MixEntry::new(JobKind::WordCount, GB, 1),
                    MixEntry::new(JobKind::Grep, GB, 1),
                ])
                .resolve(4),
                arrivals: ArrivalSchedule::Batch,
                arrival_rate: None,
                map_failure_prob: 0.0,
                slow_node_factor: 1.0,
                estimator,
                seed: 1,
            },
            model: Some(ModelPoint {
                fork_join: 110.0,
                tripathi: 120.0,
                aria: 130.0,
                herodotou: 80.0,
                makespan: 150.0,
                per_class: vec![
                    ClassPoint {
                        fork_join: 150.0,
                        tripathi: 160.0,
                        aria: 170.0,
                        herodotou: 80.0,
                    },
                    ClassPoint {
                        fork_join: 55.0,
                        tripathi: 60.0,
                        aria: 65.0,
                        herodotou: 80.0,
                    },
                ],
                open: None,
            }),
            sim: Some(SimResult {
                median_response: 100.0,
                mean_response: 101.0,
                makespan: 140.0,
                per_class_median: vec![125.0, 50.0],
                reps: 3,
            }),
        }
    }

    fn sweep(estimators: &[EstimatorKind]) -> SweepResult {
        SweepResult {
            name: "fake".into(),
            points: estimators
                .iter()
                .enumerate()
                .map(|(i, &e)| fake_point(i, e))
                .collect(),
        }
    }

    #[test]
    fn bands_join_estimates_with_ground_truth() {
        let s = sweep(&[EstimatorKind::ForkJoin]);
        let bands = error_bands(&s);
        // fork_join judged on its own point; the other three series are
        // not on the axis so they're judged over all points.
        let fj = bands
            .iter()
            .find(|b| b.estimator == EstimatorKind::ForkJoin)
            .unwrap();
        assert!((fj.band.mean - 0.10).abs() < 1e-12);
        let tr = bands
            .iter()
            .find(|b| b.estimator == EstimatorKind::Tripathi)
            .unwrap();
        assert!((tr.band.mean - 0.20).abs() < 1e-12);
    }

    #[test]
    fn bands_respect_a_swept_estimator_axis() {
        let s = sweep(&[EstimatorKind::ForkJoin, EstimatorKind::Tripathi]);
        for b in error_bands(&s) {
            match b.estimator {
                EstimatorKind::ForkJoin => assert_eq!(b.band.count, 1),
                EstimatorKind::Tripathi => assert_eq!(b.band.count, 1),
                // Off-axis series fall back to every point.
                _ => assert_eq!(b.band.count, 2),
            }
        }
    }

    #[test]
    fn class_bands_judge_each_class_separately() {
        let s = sweep(&[EstimatorKind::ForkJoin]);
        let bands = class_error_bands(&s);
        // 2 classes × 4 series.
        assert_eq!(bands.len(), 8);
        let wc_fj = bands
            .iter()
            .find(|b| b.class == "wordcount@1024MB" && b.estimator == EstimatorKind::ForkJoin)
            .unwrap();
        // |150 - 125| / 125 = 20%.
        assert!((wc_fj.band.mean - 0.20).abs() < 1e-12);
        let grep_fj = bands
            .iter()
            .find(|b| b.class == "grep@1024MB" && b.estimator == EstimatorKind::ForkJoin)
            .unwrap();
        // |55 - 50| / 50 = 10%.
        assert!((grep_fj.band.mean - 0.10).abs() < 1e-12);
        assert_eq!(wc_fj.band.count, 1);
    }

    #[test]
    fn report_renders_table_and_bands() {
        let s = sweep(&[EstimatorKind::ForkJoin]);
        let r = render_report(&s);
        assert!(r.contains("scenario `fake`"));
        assert!(r.contains("| 0 | 4 | 128 |"));
        assert!(r.contains("1xwordcount@1024MB+1xgrep@1024MB"));
        assert!(r.contains("| batch |"), "arrival schedule column");
        assert!(r.contains("| 150.0 | 140.0 |"), "makespan columns");
        assert!(r.contains("+10.0%"));
        assert!(r.contains("model vs simulator"));
        assert!(r.contains("per-class model vs simulator"));
        assert!(r.contains("grep@1024MB"));
        assert!(r.contains("fork_join"));
    }

    #[test]
    fn missing_backends_render_as_dashes() {
        let mut s = sweep(&[EstimatorKind::ForkJoin]);
        s.points[0].sim = None;
        let r = render_report(&s);
        assert!(r.contains("| — |"));
        assert!(error_bands(&s).is_empty());
        assert!(class_error_bands(&s).is_empty());
        let csv = to_csv(&s);
        assert!(csv.lines().nth(1).unwrap().ends_with(','));
        assert!(csv.starts_with("index,nodes,"));
        assert!(
            csv.contains("arrivals"),
            "csv header names the arrival axis"
        );
        assert!(csv.contains("measured_makespan"));
        assert!(csv.contains(",batch,"));
        assert!(csv.contains("1xwordcount@1024MB+1xgrep@1024MB"));
    }
}
