//! # mr2-scenario — declarative what-if scenario engine
//!
//! The paper's models answer what-if questions — "how does mean response
//! time change with N concurrent jobs, cluster size, or scheduler?" —
//! and this crate turns them into a batch evaluation service:
//!
//! * [`Scenario`] (module [`spec`]): a declarative sweep over cluster
//!   axes (nodes, block size, container size, scheduler), a first-class
//!   [`WorkloadMix`] axis (heterogeneous job mixes; the `axis_jobs` /
//!   `axis_input_bytes` / `axis_n_jobs` conveniences cross single-entry
//!   mixes for homogeneous sweeps), an arrival axis
//!   ([`ArrivalSchedule`]: batch, staggered, or explicit trace offsets
//!   — when jobs arrive is a workload dimension of its own), failure
//!   and straggler axes (`map_failure_prob`, `slow_node_factor`), and
//!   the estimator series, combined [`SweepMode::Cartesian`] or
//!   [`SweepMode::Zip`];
//! * [`JobTrace`] (module [`trace`]): Hadoop job-history / Rumen-style
//!   JSON-lines ingestion, so sweeps replay recorded production mixes
//!   (each replayed job keeps its submission offset) instead of
//!   synthetic presets;
//! * [`expand`]: deterministic expansion into [`EvalPoint`]s;
//! * [`run_scenario`] (module [`runner`]): a parallel batch runner over
//!   the narrow `eval_mix` entry APIs of `mr2-model` (analytic, with
//!   the windowed staggered-arrival approximation) and `mapreduce-sim`
//!   (ground truth), per-class results and makespans included;
//! * [`ResultCache`] (module [`cache`]): a content-hashed store so
//!   repeated sweeps, overlapping scenarios, and the estimator axis skip
//!   already-evaluated points;
//! * [`error_bands`] / [`class_error_bands`] / [`render_report`]
//!   (module [`report`]): the comparison layer joining estimates
//!   against simulation into aggregate and per-class
//!   `mr2_model::ErrorBand`s.
//!
//! ```
//! use mr2_scenario::{run_scenario, Backends, ResultCache, RunnerConfig, Scenario};
//!
//! let scenario = Scenario::new("doc")
//!     .axis_nodes([2usize, 4])
//!     .axis_n_jobs([1usize, 2])
//!     .axis_input_bytes([256 * 1024 * 1024])
//!     .with_backends(Backends::analytic_only());
//! let cache = ResultCache::new();
//! let sweep = run_scenario(&scenario, &cache, &RunnerConfig::default());
//! assert_eq!(sweep.points.len(), 4);
//! // A second identical run answers entirely from the cache.
//! let again = run_scenario(&scenario, &cache, &RunnerConfig::default());
//! assert_eq!(cache.stats().misses, 4);
//! assert_eq!(sweep.points, again.points);
//! ```

pub mod cache;
pub mod expand;
pub mod json;
pub mod plan;
pub mod report;
pub mod runner;
pub mod spec;
pub mod trace;

pub use cache::{schema_version, CacheStats, KeyHasher, ResultCache};
pub use expand::expand;
pub use plan::{
    plan, PlanProbe, PlanRequest, PlanResult, SearchSpace, SloMetric, SloSpec, MAX_SEARCH_NODES,
};
pub use report::{class_error_bands, error_bands, render_report, to_csv, ClassBand, SeriesBand};
pub use runner::{
    evaluate_point, run_scenario, run_scenario_streaming, select, select_class, PointResult,
    RunnerConfig, SimResult, SweepResult,
};
pub use spec::{
    ArrivalSchedule, Backends, EstimatorKind, EvalPoint, JobKind, MixEntry, ReducePolicy,
    ResolvedEntry, ResolvedMix, Scenario, SweepMode, WorkloadAxis, WorkloadMix,
};
pub use trace::{JobTrace, TraceError, TraceJob};
