//! The batch runner: evaluates every point of a scenario, in parallel,
//! through the content-hashed [`ResultCache`].
//!
//! Parallelism is a hand-rolled shared-queue pool over `std::thread`
//! (no external deps): workers atomically claim the next unevaluated
//! point, so load balances itself the way a work-stealing deque would
//! for this one-level task graph. Every point's evaluation is a pure
//! function of the point (simulator seeds are per-point config, never
//! thread state), so parallel and serial runs produce bit-identical
//! results in the same order.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

use mapreduce_sim::profile::{profile_job, MeasuredProfile};
use mapreduce_sim::{JobSpec, SimPoint};
use mr2_model::{Calibration, ClassPoint, MixClass, ModelOptions, ModelPoint};

use crate::cache::{KeyHasher, ResultCache};
use crate::spec::{EstimatorKind, EvalPoint, ResolvedEntry, Scenario};

/// Runner knobs.
#[derive(Debug, Clone, Copy, Default)]
pub struct RunnerConfig {
    /// Worker threads; 0 means one per available core.
    pub threads: usize,
}

impl RunnerConfig {
    /// Run everything on the calling thread (useful for determinism
    /// tests and debugging).
    pub fn serial() -> RunnerConfig {
        RunnerConfig { threads: 1 }
    }

    /// Worker threads for `points` schedulable units: the configured
    /// count (one per available core when 0), clamped to the number of
    /// points — extra workers could never claim work and would only pay
    /// spawn/join overhead — and never below one.
    pub fn effective_threads(&self, points: usize) -> usize {
        let configured = if self.threads > 0 {
            self.threads
        } else {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        };
        configured.min(points).max(1)
    }
}

/// Ground truth of one evaluated point (simulator backend).
#[derive(Debug, Clone, PartialEq)]
pub struct SimResult {
    /// Median over repetitions of the per-rep mean response time, over
    /// all jobs of the mix (responses measured from each job's own
    /// submit time).
    pub median_response: f64,
    /// Mean over repetitions.
    pub mean_response: f64,
    /// Median over repetitions of the makespan (first submission →
    /// last completion). Diverges from response time under staggered
    /// or trace arrivals.
    pub makespan: f64,
    /// Per mix entry, in submission order: median over repetitions of
    /// that class's per-rep mean response.
    pub per_class_median: Vec<f64>,
    /// Repetitions used.
    pub reps: usize,
}

/// Everything the runner produced for one [`EvalPoint`].
#[derive(Debug, Clone, PartialEq)]
pub struct PointResult {
    /// The evaluated configuration.
    pub point: EvalPoint,
    /// Analytic estimates (when the analytic backend is enabled).
    pub model: Option<ModelPoint>,
    /// Simulator ground truth (when the simulator backend is enabled).
    pub sim: Option<SimResult>,
}

impl PointResult {
    /// The aggregate estimate of the point's selected estimator series.
    pub fn estimate(&self) -> Option<f64> {
        self.model.as_ref().map(|m| select(m, self.point.estimator))
    }

    /// The measured (simulated) response the estimate is judged against.
    pub fn measured(&self) -> Option<f64> {
        self.sim.as_ref().map(|s| s.median_response)
    }

    /// The model's makespan estimate (fork/join-based — the paper's
    /// best estimator — regardless of the point's reporting series).
    pub fn estimate_makespan(&self) -> Option<f64> {
        self.model.as_ref().map(|m| m.makespan)
    }

    /// The measured (simulated) makespan.
    pub fn measured_makespan(&self) -> Option<f64> {
        self.sim.as_ref().map(|s| s.makespan)
    }

    /// The selected series' estimate for mix entry `class`.
    pub fn class_estimate(&self, class: usize) -> Option<f64> {
        let m = self.model.as_ref()?;
        Some(select_class(m.per_class.get(class)?, self.point.estimator))
    }

    /// The measured response of mix entry `class`.
    pub fn class_measured(&self, class: usize) -> Option<f64> {
        self.sim.as_ref()?.per_class_median.get(class).copied()
    }
}

/// Pick one estimator series out of a full model solve's aggregate.
pub fn select(m: &ModelPoint, e: EstimatorKind) -> f64 {
    match e {
        EstimatorKind::ForkJoin => m.fork_join,
        EstimatorKind::Tripathi => m.tripathi,
        EstimatorKind::Aria => m.aria,
        EstimatorKind::Herodotou => m.herodotou,
    }
}

/// Pick one estimator series out of a per-class estimate.
pub fn select_class(c: &ClassPoint, e: EstimatorKind) -> f64 {
    match e {
        EstimatorKind::ForkJoin => c.fork_join,
        EstimatorKind::Tripathi => c.tripathi,
        EstimatorKind::Aria => c.aria,
        EstimatorKind::Herodotou => c.herodotou,
    }
}

/// A completed sweep: per-point results in expansion order.
#[derive(Debug, Clone)]
pub struct SweepResult {
    /// The scenario name.
    pub name: String,
    /// One result per expanded point, in expansion (index) order.
    pub points: Vec<PointResult>,
}

/// Expand `scenario` and evaluate every point through `cache`, using
/// `cfg.threads` workers. Results come back in expansion order
/// regardless of scheduling.
///
/// Points that share an evaluation signature (everything but `index`
/// and `estimator` — e.g. the whole estimator axis of one
/// configuration) are deduplicated *before* dispatch, so concurrent
/// workers never race to compute the same record and each distinct
/// configuration is evaluated exactly once per process.
pub fn run_scenario(scenario: &Scenario, cache: &ResultCache, cfg: &RunnerConfig) -> SweepResult {
    run_scenario_observed(scenario, cache, cfg, None)
}

/// [`run_scenario`] with a per-point completion observer: `on_point` is
/// called once per expanded point — including every deduplicated
/// dependent of a representative — as soon as its result exists, from
/// whichever worker thread produced it. Completion order across
/// configurations follows scheduling; points sharing one signature are
/// emitted back-to-back in index order. The full [`SweepResult`] is
/// still returned at the end, identical to the non-streaming run.
///
/// This is what lets a server stream a large sweep as NDJSON: the first
/// line leaves the process while later points are still computing,
/// instead of the whole grid gating the first byte.
pub fn run_scenario_streaming(
    scenario: &Scenario,
    cache: &ResultCache,
    cfg: &RunnerConfig,
    on_point: &(dyn Fn(PointResult) + Sync),
) -> SweepResult {
    run_scenario_observed(scenario, cache, cfg, Some(on_point))
}

fn run_scenario_observed(
    scenario: &Scenario,
    cache: &ResultCache,
    cfg: &RunnerConfig,
    on_point: Option<&(dyn Fn(PointResult) + Sync)>,
) -> SweepResult {
    let points = crate::expand(scenario);

    // Map every point to the representative slot of its signature.
    let mut first_with_sig: std::collections::HashMap<u64, usize> =
        std::collections::HashMap::new();
    let mut rep_of: Vec<usize> = Vec::with_capacity(points.len());
    let mut unique: Vec<usize> = Vec::new();
    for (i, p) in points.iter().enumerate() {
        let sig = point_key(p).finish();
        let rep = *first_with_sig.entry(sig).or_insert_with(|| {
            unique.push(i);
            i
        });
        rep_of.push(rep);
    }

    // Inverse of `rep_of`, only materialised when someone is listening:
    // which indices each representative stands for, in index order.
    let dependents: Vec<Vec<usize>> = if on_point.is_some() {
        let mut deps = vec![Vec::new(); points.len()];
        for (i, &rep) in rep_of.iter().enumerate() {
            deps[rep].push(i);
        }
        deps
    } else {
        Vec::new()
    };

    let threads = cfg.effective_threads(unique.len());
    let next = AtomicUsize::new(0);
    // One write-once slot per point: each representative index is
    // claimed by exactly one worker, so a lock-free `OnceLock` replaces
    // the old per-slot mutex — publication is a single atomic store.
    let slots: Vec<OnceLock<PointResult>> = points.iter().map(|_| OnceLock::new()).collect();

    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| loop {
                let u = next.fetch_add(1, Ordering::Relaxed);
                let Some(&i) = unique.get(u) else { break };
                let result = evaluate_point(&points[i], &scenario.backends, cache);
                slots[i]
                    .set(result)
                    .expect("each representative claimed by one worker");
                if let Some(observer) = on_point {
                    let rep = slots[i].get().expect("just set");
                    for &j in &dependents[i] {
                        observer(PointResult {
                            point: points[j].clone(),
                            model: rep.model.clone(),
                            sim: rep.sim.clone(),
                        });
                    }
                }
            });
        }
    });

    let evaluated: Vec<Option<PointResult>> = slots.into_iter().map(|s| s.into_inner()).collect();
    SweepResult {
        name: scenario.name.clone(),
        points: points
            .iter()
            .enumerate()
            .map(|(i, p)| {
                let rep = evaluated[rep_of[i]]
                    .as_ref()
                    .expect("every representative evaluated");
                PointResult {
                    point: p.clone(),
                    model: rep.model.clone(),
                    sim: rep.sim.clone(),
                }
            })
            .collect(),
    }
}

/// Evaluate one point against the configured backends, via the cache.
pub fn evaluate_point(
    point: &EvalPoint,
    backends: &crate::spec::Backends,
    cache: &ResultCache,
) -> PointResult {
    let cfg = point.sim_config();
    let submits = point.submit_offsets();
    // Hash the cluster once and the full point signature once; the
    // backend branches and the per-entry profile keys below continue
    // from these prefixes (a `KeyHasher` clone is a register copy)
    // instead of re-hashing the cluster/mix/arrivals per key.
    let cluster = cluster_key(point);
    let base = point_key_from(cluster.clone(), point);

    let sim = backends.simulator.map(|reps| {
        // Outer span: cache lookup + (on a miss) the simulation run;
        // the inner span times the run alone.
        let _phase = mr2_obs::span("point.sim");
        let key = base.clone().str("sim").u64(reps as u64).finish();
        let rec = cache.get_or_compute(key, || {
            let _run = mr2_obs::span("sim.run");
            let classes: Vec<(JobSpec, usize)> = point
                .mix
                .entries
                .iter()
                .map(|e| (e.spec(), e.count))
                .collect();
            mapreduce_sim::eval_mix(&cfg, &classes, &submits, reps).to_record()
        });
        let p = SimPoint::from_record(&rec).expect("cached sim record shape");
        SimResult {
            median_response: p.median_response,
            mean_response: p.mean_response,
            makespan: p.makespan,
            per_class_median: p.per_class_median,
            reps,
        }
    });

    let model = backends.analytic.then(|| {
        let _phase = mr2_obs::span("point.model");
        let classes: Vec<MixClass> = point
            .mix
            .entries
            .iter()
            .map(|e| {
                let spec = e.spec();
                let profile = backends.profile_calibration.then(|| {
                    // A profiling run executes one job of the class
                    // alone, so its key must not include the copy count:
                    // every count of a class on a configuration — and
                    // every other mix containing it — shares one
                    // profile.
                    let key = profile_key(&cluster, e);
                    let rec = cache.get_or_compute(key, || {
                        let _run = mr2_obs::span("profile.run");
                        profile_job(&spec, &cfg).0.to_record()
                    });
                    MeasuredProfile::from_record(&rec).expect("cached profile record shape")
                });
                MixClass {
                    spec,
                    count: e.count,
                    profile,
                }
            })
            .collect();
        let key = base
            .clone()
            .str("model")
            .bool(backends.profile_calibration)
            .finish();
        let rec = cache.get_or_compute(key, || {
            let _run = mr2_obs::span("model.eval");
            match point.arrival_rate {
                // Open arrivals: the steady-state Poisson solve replaces
                // the closed batch/schedule evaluation.
                Some(rate) => mr2_model::eval_open_mix(
                    &cfg,
                    &classes,
                    rate,
                    &ModelOptions::default(),
                    &Calibration::default(),
                ),
                None => mr2_model::eval_mix(
                    &cfg,
                    &classes,
                    &submits,
                    &ModelOptions::default(),
                    &Calibration::default(),
                ),
            }
            .to_record()
        });
        ModelPoint::from_record(&rec).expect("cached model record shape")
    });

    points_evaluated().inc();
    PointResult {
        point: point.clone(),
        model,
        sim,
    }
}

/// Points evaluated by [`evaluate_point`] (cache hits included).
fn points_evaluated() -> &'static mr2_obs::Counter {
    static C: OnceLock<mr2_obs::Counter> = OnceLock::new();
    C.get_or_init(|| {
        mr2_obs::counter(
            "mr2_points_evaluated_total",
            "Evaluation points processed by the scenario runner.",
        )
    })
}

/// Content key of a point's cluster configuration, on a
/// schema-versioned hasher ([`KeyHasher::versioned`]) so model or
/// simulator schema bumps invalidate every persisted result.
/// Deliberately excludes `index` (a position, not an input) and
/// `estimator` (a reporting selector: all four series come from the
/// same solve). The workload mix is appended separately (see
/// [`point_key`]) because profiling runs are keyed per class, not per
/// mix.
fn cluster_key(p: &EvalPoint) -> KeyHasher {
    KeyHasher::versioned()
        .u64(p.nodes as u64)
        .u64(p.block_mb)
        .u64(p.container_mb as u64)
        .str(match p.scheduler {
            mapreduce_sim::SchedulerPolicy::CapacityFifo => "capacity_fifo",
            mapreduce_sim::SchedulerPolicy::Fair => "fair",
        })
        .f64(p.map_failure_prob)
        .f64(p.slow_node_factor)
        .u64(p.seed)
}

/// Content key of a point's full evaluation signature: the cluster, the
/// canonical form of the resolved workload mix, the arrival schedule,
/// and — for open points — the Poisson arrival rate. Each backend
/// appends its tag and the remaining inputs it actually consumes. The
/// arrival schedule and rate deliberately do *not* enter
/// [`profile_key`]: profiling runs execute one job alone at t = 0
/// whatever the point's arrivals.
fn point_key(p: &EvalPoint) -> KeyHasher {
    point_key_from(cluster_key(p), p)
}

/// The point signature continued from an already-hashed cluster prefix
/// — lets [`evaluate_point`] hash the cluster once and fork it into the
/// point signature and the per-entry profile keys.
fn point_key_from(cluster: KeyHasher, p: &EvalPoint) -> KeyHasher {
    let h = p.arrivals.hash_into(p.mix.hash_into(cluster));
    match p.arrival_rate {
        Some(rate) => h.str("open").f64(rate),
        None => h,
    }
}

/// Content key of one class's profiling run: the cluster prefix (from
/// [`cluster_key`]) plus the class's own job/input/reduces — no copy
/// count, no sibling entries, so the profile is shared across every mix
/// and multiprogramming level that contains the class.
fn profile_key(cluster: &KeyHasher, e: &ResolvedEntry) -> u64 {
    cluster
        .clone()
        .str("profile")
        .str(e.job.name())
        .u64(e.input_bytes)
        .u64(e.reduces as u64)
        .finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{Backends, JobKind, MixEntry, WorkloadMix};
    use mapreduce_sim::MB;

    fn tiny_scenario(name: &str) -> Scenario {
        Scenario::new(name)
            .axis_nodes([2usize])
            .axis_input_bytes([256 * MB])
            .axis_n_jobs([1usize, 2])
            .with_backends(Backends {
                analytic: true,
                profile_calibration: false,
                simulator: Some(1),
            })
    }

    #[test]
    fn runner_fills_every_slot_in_order() {
        let cache = ResultCache::new();
        let r = run_scenario(&tiny_scenario("t"), &cache, &RunnerConfig::default());
        assert_eq!(r.points.len(), 2);
        for (i, p) in r.points.iter().enumerate() {
            assert_eq!(p.point.index, i);
            assert!(p.estimate().unwrap() > 0.0);
            assert!(p.measured().unwrap() > 0.0);
        }
    }

    #[test]
    fn streaming_observer_sees_every_point_and_matches_the_sweep() {
        let cache = ResultCache::new();
        // The estimator axis dedups to one underlying solve — the
        // observer must still fire once per *expanded* point.
        let s = tiny_scenario("t").axis_estimators(EstimatorKind::ALL);
        let streamed = std::sync::Mutex::new(Vec::new());
        let r = run_scenario_streaming(&s, &cache, &RunnerConfig::default(), &|p| {
            streamed.lock().unwrap().push(p);
        });
        let mut streamed = streamed.into_inner().unwrap();
        assert_eq!(streamed.len(), r.points.len());
        streamed.sort_by_key(|p| p.point.index);
        for (got, want) in streamed.iter().zip(&r.points) {
            assert_eq!(got.point.index, want.point.index);
            assert_eq!(got.estimate(), want.estimate());
            assert_eq!(got.measured(), want.measured());
        }
        // And the observed run returns the same sweep a plain run does.
        let plain = run_scenario(&s, &cache, &RunnerConfig::serial());
        for (a, b) in r.points.iter().zip(&plain.points) {
            assert_eq!(a.estimate(), b.estimate());
        }
    }

    #[test]
    fn estimator_axis_shares_the_underlying_solve() {
        let cache = ResultCache::new();
        let s = tiny_scenario("t")
            .axis_n_jobs([1usize])
            .axis_estimators(EstimatorKind::ALL);
        let r = run_scenario(&s, &cache, &RunnerConfig::serial());
        assert_eq!(r.points.len(), 4);
        // 4 points, one shared configuration: the runner dedupes before
        // dispatch, so exactly one sim + one model evaluation happen and
        // the repeat points never even consult the cache.
        let stats = cache.stats();
        assert_eq!(stats.misses, 2, "one sim + one model record");
        assert_eq!(stats.hits, 0, "repeat points are deduped pre-dispatch");
        // All four series come from the same solve and differ per kind.
        let m = r.points[0].model.clone().unwrap();
        for p in &r.points[1..] {
            assert_eq!(p.model.as_ref(), Some(&m));
        }
        assert_ne!(r.points[0].estimate(), r.points[1].estimate());
    }

    #[test]
    fn backend_and_options_change_the_cache_key() {
        let p = crate::expand(&tiny_scenario("t"))[0].clone();
        let with = point_key(&p).str("model").bool(true).finish();
        let without = point_key(&p).str("model").bool(false).finish();
        assert_ne!(with, without, "profile toggle must separate model keys");
        assert_ne!(
            point_key(&p).str("sim").finish(),
            point_key(&p).str("model").finish(),
            "backend tag must separate keys"
        );
    }

    #[test]
    fn failure_probability_axis_changes_the_cache_key() {
        let s = tiny_scenario("t")
            .axis_n_jobs([1usize])
            .axis_map_failure_prob([0.0, 0.2]);
        let pts = crate::expand(&s);
        assert_eq!(pts.len(), 2);
        assert_ne!(
            point_key(&pts[0]).finish(),
            point_key(&pts[1]).finish(),
            "failure probability is an evaluation input"
        );
    }

    #[test]
    fn profile_key_is_shared_across_counts_and_mixes() {
        let pts = crate::expand(&tiny_scenario("t")); // n_jobs axis: [1, 2]
        assert_eq!(
            profile_key(&cluster_key(&pts[0]), &pts[0].mix.entries[0]),
            profile_key(&cluster_key(&pts[1]), &pts[1].mix.entries[0]),
            "a profiling run executes one job alone; N must not split it"
        );
        let cache = ResultCache::new();
        let s = tiny_scenario("t").with_backends(Backends {
            analytic: true,
            profile_calibration: true,
            simulator: None,
        });
        run_scenario(&s, &cache, &RunnerConfig::serial());
        // 2 N-points: 1 shared profile record + 2 model records.
        assert_eq!(cache.stats().entries, 3);
        assert_eq!(cache.stats().hits, 1, "second point reuses the profile");

        // A heterogeneous mix containing the same class reuses that
        // class's profile record and only profiles the novel class.
        let het = Scenario::new("het")
            .axis_nodes([2usize])
            .axis_mixes([WorkloadMix::new([
                MixEntry::new(JobKind::WordCount, 256 * MB, 2),
                MixEntry::new(JobKind::Grep, 256 * MB, 1),
            ])])
            .with_backends(Backends {
                analytic: true,
                profile_calibration: true,
                simulator: None,
            });
        run_scenario(&het, &cache, &RunnerConfig::serial());
        // +1 grep profile, +1 mix model record; the wordcount profile
        // is a cache hit.
        assert_eq!(cache.stats().entries, 5);
    }

    #[test]
    fn arrival_rate_enters_the_point_key() {
        let s = tiny_scenario("t")
            .axis_n_jobs([1usize])
            .axis_arrival_rate_opt(vec![None, Some(1e-3), Some(2e-3)]);
        let pts = crate::expand(&s);
        assert_eq!(pts.len(), 3);
        let keys: Vec<u64> = pts.iter().map(|p| point_key(p).finish()).collect();
        assert_ne!(keys[0], keys[1], "open vs closed must not share a record");
        assert_ne!(keys[1], keys[2], "distinct rates must not share a record");
    }

    #[test]
    fn arrival_rate_axis_routes_to_the_open_model() {
        let cache = ResultCache::new();
        let s = Scenario::new("open")
            .axis_nodes([2usize])
            .axis_input_bytes([256 * MB])
            .axis_arrival_rate([1e-3, 2e-3])
            .with_backends(Backends {
                analytic: true,
                profile_calibration: false,
                simulator: None,
            });
        let r = run_scenario(&s, &cache, &RunnerConfig::serial());
        assert_eq!(r.points.len(), 2);
        let m0 = r.points[0].model.as_ref().unwrap();
        let m1 = r.points[1].model.as_ref().unwrap();
        let o0 = m0.open.expect("open points carry the open tail");
        assert!(o0.saturation_rate > o0.knee_rate && o0.knee_rate > 0.0);
        assert!(m1.fork_join > m0.fork_join, "response grows with λ");
        assert_eq!(cache.stats().misses, 2, "each rate is its own record");

        // A closed point of the same shape has no open tail.
        let closed = Scenario::new("closed")
            .axis_nodes([2usize])
            .axis_input_bytes([256 * MB])
            .with_backends(Backends {
                analytic: true,
                profile_calibration: false,
                simulator: None,
            });
        let r = run_scenario(&closed, &cache, &RunnerConfig::serial());
        assert!(r.points[0].model.as_ref().unwrap().open.is_none());
    }

    #[test]
    fn per_class_results_line_up_with_the_mix() {
        let cache = ResultCache::new();
        let s = Scenario::new("mix")
            .axis_nodes([2usize])
            .axis_mixes([WorkloadMix::new([
                MixEntry::new(JobKind::Grep, 128 * MB, 1),
                MixEntry::new(JobKind::TeraSort, 256 * MB, 2),
            ])])
            .with_backends(Backends {
                analytic: true,
                profile_calibration: false,
                simulator: Some(1),
            });
        let r = run_scenario(&s, &cache, &RunnerConfig::serial());
        let p = &r.points[0];
        let model = p.model.as_ref().unwrap();
        let sim = p.sim.as_ref().unwrap();
        assert_eq!(model.per_class.len(), 2);
        assert_eq!(sim.per_class_median.len(), 2);
        for c in 0..2 {
            assert!(p.class_estimate(c).unwrap() > 0.0);
            assert!(p.class_measured(c).unwrap() > 0.0);
        }
        assert!(p.class_estimate(2).is_none());
        // The small grep class must be faster than the terasort class
        // in both backends.
        assert!(sim.per_class_median[0] < sim.per_class_median[1]);
        assert!(model.per_class[0].fork_join < model.per_class[1].fork_join);
    }
}
