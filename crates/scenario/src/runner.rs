//! The batch runner: evaluates every point of a scenario, in parallel,
//! through the content-hashed [`ResultCache`].
//!
//! Parallelism is a hand-rolled shared-queue pool over `std::thread`
//! (no external deps): workers atomically claim the next unevaluated
//! point, so load balances itself the way a work-stealing deque would
//! for this one-level task graph. Every point's evaluation is a pure
//! function of the point (simulator seeds are per-point config, never
//! thread state), so parallel and serial runs produce bit-identical
//! results in the same order.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use mapreduce_sim::profile::{profile_job, MeasuredProfile};
use mapreduce_sim::SimPoint;
use mr2_model::{Calibration, ModelOptions, ModelPoint};

use crate::cache::{KeyHasher, ResultCache};
use crate::spec::{EstimatorKind, EvalPoint, Scenario};

/// Runner knobs.
#[derive(Debug, Clone, Copy, Default)]
pub struct RunnerConfig {
    /// Worker threads; 0 means one per available core.
    pub threads: usize,
}

impl RunnerConfig {
    /// Run everything on the calling thread (useful for determinism
    /// tests and debugging).
    pub fn serial() -> RunnerConfig {
        RunnerConfig { threads: 1 }
    }

    fn effective_threads(&self) -> usize {
        if self.threads > 0 {
            self.threads
        } else {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        }
    }
}

/// Ground truth of one evaluated point (simulator backend).
#[derive(Debug, Clone, PartialEq)]
pub struct SimResult {
    /// Median over repetitions of the per-rep mean response time.
    pub median_response: f64,
    /// Mean over repetitions.
    pub mean_response: f64,
    /// Repetitions used.
    pub reps: usize,
}

/// Everything the runner produced for one [`EvalPoint`].
#[derive(Debug, Clone, PartialEq)]
pub struct PointResult {
    /// The evaluated configuration.
    pub point: EvalPoint,
    /// Analytic estimates (when the analytic backend is enabled).
    pub model: Option<ModelPoint>,
    /// Simulator ground truth (when the simulator backend is enabled).
    pub sim: Option<SimResult>,
}

impl PointResult {
    /// The estimate of the point's selected estimator series.
    pub fn estimate(&self) -> Option<f64> {
        self.model.map(|m| select(&m, self.point.estimator))
    }

    /// The measured (simulated) response the estimate is judged against.
    pub fn measured(&self) -> Option<f64> {
        self.sim.as_ref().map(|s| s.median_response)
    }
}

/// Pick one estimator series out of a full model solve.
pub fn select(m: &ModelPoint, e: EstimatorKind) -> f64 {
    match e {
        EstimatorKind::ForkJoin => m.fork_join,
        EstimatorKind::Tripathi => m.tripathi,
        EstimatorKind::Aria => m.aria,
        EstimatorKind::Herodotou => m.herodotou,
    }
}

/// A completed sweep: per-point results in expansion order.
#[derive(Debug, Clone)]
pub struct SweepResult {
    /// The scenario name.
    pub name: String,
    /// One result per expanded point, in expansion (index) order.
    pub points: Vec<PointResult>,
}

/// Expand `scenario` and evaluate every point through `cache`, using
/// `cfg.threads` workers. Results come back in expansion order
/// regardless of scheduling.
///
/// Points that share an evaluation signature (everything but `index`
/// and `estimator` — e.g. the whole estimator axis of one
/// configuration) are deduplicated *before* dispatch, so concurrent
/// workers never race to compute the same record and each distinct
/// configuration is evaluated exactly once per process.
pub fn run_scenario(scenario: &Scenario, cache: &ResultCache, cfg: &RunnerConfig) -> SweepResult {
    let points = crate::expand(scenario);

    // Map every point to the representative slot of its signature.
    let mut first_with_sig: std::collections::HashMap<u64, usize> =
        std::collections::HashMap::new();
    let mut rep_of: Vec<usize> = Vec::with_capacity(points.len());
    let mut unique: Vec<usize> = Vec::new();
    for (i, p) in points.iter().enumerate() {
        let sig = config_key(p).u64(p.n_jobs as u64).finish();
        let rep = *first_with_sig.entry(sig).or_insert_with(|| {
            unique.push(i);
            i
        });
        rep_of.push(rep);
    }

    let threads = cfg.effective_threads().min(unique.len()).max(1);
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<PointResult>>> = points.iter().map(|_| Mutex::new(None)).collect();

    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| loop {
                let u = next.fetch_add(1, Ordering::Relaxed);
                let Some(&i) = unique.get(u) else { break };
                let result = evaluate_point(&points[i], &scenario.backends, cache);
                *slots[i].lock().unwrap() = Some(result);
            });
        }
    });

    let evaluated: Vec<Option<PointResult>> =
        slots.into_iter().map(|s| s.into_inner().unwrap()).collect();
    SweepResult {
        name: scenario.name.clone(),
        points: points
            .iter()
            .enumerate()
            .map(|(i, p)| {
                let rep = evaluated[rep_of[i]]
                    .as_ref()
                    .expect("every representative evaluated");
                PointResult {
                    point: *p,
                    model: rep.model,
                    sim: rep.sim.clone(),
                }
            })
            .collect(),
    }
}

/// Evaluate one point against the configured backends, via the cache.
pub fn evaluate_point(
    point: &EvalPoint,
    backends: &crate::spec::Backends,
    cache: &ResultCache,
) -> PointResult {
    let cfg = point.sim_config();
    let spec = point.job_spec();

    let sim = backends.simulator.map(|reps| {
        let key = config_key(point)
            .str("sim")
            .u64(point.n_jobs as u64)
            .u64(reps as u64)
            .finish();
        let rec = cache.get_or_compute(key, || {
            mapreduce_sim::eval_point(&cfg, &spec, point.n_jobs, reps).to_record()
        });
        let p = SimPoint::from_record(&rec).expect("cached sim record shape");
        SimResult {
            median_response: p.median_response,
            mean_response: p.mean_response,
            reps,
        }
    });

    let model = backends.analytic.then(|| {
        let profile = backends.profile_calibration.then(|| {
            // A profiling run executes one job alone, so its key must
            // not include `n_jobs`: the whole multiprogramming axis of
            // a configuration shares one profile.
            let key = config_key(point).str("profile").finish();
            let rec = cache.get_or_compute(key, || profile_job(&spec, &cfg).0.to_record());
            MeasuredProfile::from_record(&rec).expect("cached profile record shape")
        });
        let key = config_key(point)
            .str("model")
            .u64(point.n_jobs as u64)
            .bool(backends.profile_calibration)
            .finish();
        let rec = cache.get_or_compute(key, || {
            mr2_model::eval_point(
                &cfg,
                &spec,
                point.n_jobs,
                &ModelOptions::default(),
                &Calibration::default(),
                profile.as_ref(),
            )
            .to_record()
        });
        ModelPoint::from_record(&rec).expect("cached model record shape")
    });

    PointResult {
        point: *point,
        model,
        sim,
    }
}

/// Content key of a point's cluster + job configuration, on a
/// schema-versioned hasher ([`KeyHasher::versioned`]) so model or
/// simulator schema bumps invalidate every persisted result.
/// Deliberately excludes `index` (a position, not an input),
/// `estimator` (a reporting selector: all four series come from the
/// same solve), and `n_jobs` (backend-dependent: a profiling run always
/// executes one job alone). Each backend appends its tag and the
/// remaining inputs it actually consumes.
fn config_key(p: &EvalPoint) -> KeyHasher {
    KeyHasher::versioned()
        .u64(p.nodes as u64)
        .u64(p.block_mb)
        .u64(p.container_mb as u64)
        .str(match p.scheduler {
            mapreduce_sim::SchedulerPolicy::CapacityFifo => "capacity_fifo",
            mapreduce_sim::SchedulerPolicy::Fair => "fair",
        })
        .str(p.job.name())
        .u64(p.input_bytes)
        .u64(p.reduces as u64)
        .u64(p.seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::Backends;
    use mapreduce_sim::MB;

    fn tiny_scenario(name: &str) -> Scenario {
        Scenario::new(name)
            .axis_nodes([2usize])
            .axis_input_bytes([256 * MB])
            .axis_n_jobs([1usize, 2])
            .with_backends(Backends {
                analytic: true,
                profile_calibration: false,
                simulator: Some(1),
            })
    }

    #[test]
    fn runner_fills_every_slot_in_order() {
        let cache = ResultCache::new();
        let r = run_scenario(&tiny_scenario("t"), &cache, &RunnerConfig::default());
        assert_eq!(r.points.len(), 2);
        for (i, p) in r.points.iter().enumerate() {
            assert_eq!(p.point.index, i);
            assert!(p.estimate().unwrap() > 0.0);
            assert!(p.measured().unwrap() > 0.0);
        }
    }

    #[test]
    fn estimator_axis_shares_the_underlying_solve() {
        let cache = ResultCache::new();
        let s = tiny_scenario("t")
            .axis_n_jobs([1usize])
            .axis_estimators(EstimatorKind::ALL);
        let r = run_scenario(&s, &cache, &RunnerConfig::serial());
        assert_eq!(r.points.len(), 4);
        // 4 points, one shared configuration: the runner dedupes before
        // dispatch, so exactly one sim + one model evaluation happen and
        // the repeat points never even consult the cache.
        let stats = cache.stats();
        assert_eq!(stats.misses, 2, "one sim + one model record");
        assert_eq!(stats.hits, 0, "repeat points are deduped pre-dispatch");
        // All four series come from the same solve and differ per kind.
        let m = r.points[0].model.unwrap();
        for p in &r.points[1..] {
            assert_eq!(p.model, Some(m));
        }
        assert_ne!(r.points[0].estimate(), r.points[1].estimate());
    }

    #[test]
    fn backend_and_options_change_the_cache_key() {
        let p = crate::expand(&tiny_scenario("t"))[0];
        let with = config_key(&p).str("model").bool(true).finish();
        let without = config_key(&p).str("model").bool(false).finish();
        assert_ne!(with, without, "profile toggle must separate model keys");
        assert_ne!(
            config_key(&p).str("sim").finish(),
            config_key(&p).str("model").finish(),
            "backend tag must separate keys"
        );
    }

    #[test]
    fn profile_key_is_shared_across_the_n_jobs_axis() {
        let pts = crate::expand(&tiny_scenario("t")); // n_jobs axis: [1, 2]
        assert_eq!(
            config_key(&pts[0]).str("profile").finish(),
            config_key(&pts[1]).str("profile").finish(),
            "a profiling run executes one job alone; N must not split it"
        );
        let cache = ResultCache::new();
        let s = tiny_scenario("t").with_backends(Backends {
            analytic: true,
            profile_calibration: true,
            simulator: None,
        });
        run_scenario(&s, &cache, &RunnerConfig::serial());
        // 2 N-points: 1 shared profile record + 2 model records.
        assert_eq!(cache.stats().entries, 3);
        assert_eq!(cache.stats().hits, 1, "second point reuses the profile");
    }
}
