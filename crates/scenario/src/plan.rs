//! Inverse capacity planning: "what is the *cheapest* cluster that
//! meets an SLO under open arrivals?"
//!
//! The forward question — "given a cluster, what response do jobs
//! see?" — is what [`crate::runner::evaluate_point`] answers. Capacity
//! planning inverts it: given a workload mix arriving at rate λ and a
//! service-level objective such as "mean response ≤ 300 s", find the
//! smallest node count in a search range whose *predicted* metric
//! satisfies the objective.
//!
//! Every SLO metric offered here is monotone non-increasing in the
//! node count (more nodes → lower utilization → less queueing → lower
//! response and makespan), so the cheapest satisfying configuration is
//! found by **bisection**: probe the endpoints to bracket feasibility,
//! then halve the bracket — `O(log(max − min))` model solves instead of
//! a linear scan. Every probe goes through the shared [`ResultCache`],
//! so re-planning (same mix, same rate, different threshold) is served
//! almost entirely from cache, and planning warms the cache for later
//! sweeps over the same configurations.

use mr2_model::ModelPoint;

use crate::cache::ResultCache;
use crate::runner::{evaluate_point, select};
use crate::spec::{ArrivalSchedule, Backends, EstimatorKind, EvalPoint, WorkloadMix};
use mapreduce_sim::SchedulerPolicy;

/// Widest node range a plan may search. Bisection only takes
/// `log₂(range)` solves, but each closed solo solve is linear in the
/// node count, so an unbounded range would let one request buy an
/// arbitrarily large evaluation.
pub const MAX_SEARCH_NODES: usize = 4096;

/// Which predicted quantity the SLO constrains. All three are monotone
/// non-increasing in the node count, which is what lets [`plan`]
/// bisect.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SloMetric {
    /// Mean steady-state response time of the chosen estimator series,
    /// seconds.
    Response,
    /// Expected makespan of the mix (span of its arrivals plus the last
    /// sojourn), seconds.
    Makespan,
    /// Bottleneck utilization, 0..1 — "keep the hottest resource below
    /// x%".
    Utilization,
}

impl SloMetric {
    /// Wire/report name.
    pub fn name(&self) -> &'static str {
        match self {
            SloMetric::Response => "response",
            SloMetric::Makespan => "makespan",
            SloMetric::Utilization => "utilization",
        }
    }

    /// Inverse of [`SloMetric::name`].
    pub fn parse(s: &str) -> Option<SloMetric> {
        match s {
            "response" => Some(SloMetric::Response),
            "makespan" => Some(SloMetric::Makespan),
            "utilization" => Some(SloMetric::Utilization),
            _ => None,
        }
    }

    /// Extract this metric from a model point (open tail present:
    /// [`plan`] only evaluates open-arrival points).
    fn extract(&self, m: &ModelPoint, estimator: EstimatorKind) -> f64 {
        match self {
            SloMetric::Response => select(m, estimator),
            SloMetric::Makespan => m.makespan,
            SloMetric::Utilization => m
                .open
                .map(|o| o.bottleneck_utilization)
                .unwrap_or(f64::INFINITY),
        }
    }
}

/// The objective: `metric ≤ threshold`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SloSpec {
    /// Constrained quantity.
    pub metric: SloMetric,
    /// Upper bound the prediction must not exceed (seconds, or a
    /// utilization fraction).
    pub threshold: f64,
}

/// The configuration range to search (inclusive on both ends).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SearchSpace {
    /// Smallest node count considered.
    pub min_nodes: usize,
    /// Largest node count considered.
    pub max_nodes: usize,
}

impl Default for SearchSpace {
    /// 1–64 nodes: covers the paper's testbed scales with room above.
    fn default() -> SearchSpace {
        SearchSpace {
            min_nodes: 1,
            max_nodes: 64,
        }
    }
}

/// One capacity-planning question.
#[derive(Debug, Clone)]
pub struct PlanRequest {
    /// The workload mix each arrival draws from.
    pub mix: WorkloadMix,
    /// Total Poisson arrival rate λ, jobs/second.
    pub arrival_rate: f64,
    /// The objective.
    pub slo: SloSpec,
    /// Node range to search.
    pub search: SearchSpace,
    /// HDFS block size, MiB.
    pub block_mb: u64,
    /// Task container memory, MiB.
    pub container_mb: u32,
    /// RM scheduler.
    pub scheduler: SchedulerPolicy,
    /// Estimator series the response SLO is judged on.
    pub estimator: EstimatorKind,
    /// Base seed (enters the cache key; the analytic solve itself is
    /// deterministic).
    pub seed: u64,
}

impl PlanRequest {
    /// A request with the default cluster template (128 MiB blocks,
    /// 1 GiB containers, capacity/FIFO, fork/join series, default
    /// search range).
    pub fn new(mix: WorkloadMix, arrival_rate: f64, slo: SloSpec) -> PlanRequest {
        PlanRequest {
            mix,
            arrival_rate,
            slo,
            search: SearchSpace::default(),
            block_mb: 128,
            container_mb: 1024,
            scheduler: SchedulerPolicy::CapacityFifo,
            estimator: EstimatorKind::ForkJoin,
            seed: 1,
        }
    }

    /// Check every field, mirroring [`crate::spec::Scenario`]'s
    /// validation style: `Err` carries a human-readable message naming
    /// the offending value.
    pub fn check(&self) -> Result<(), String> {
        self.mix
            .check(&[self.search.min_nodes, self.search.max_nodes])?;
        if !(self.arrival_rate.is_finite() && self.arrival_rate > 0.0) {
            return Err(format!(
                "arrival_rate {} must be a positive finite rate (jobs/second)",
                self.arrival_rate
            ));
        }
        if !(self.slo.threshold.is_finite() && self.slo.threshold > 0.0) {
            return Err(format!(
                "slo threshold {} must be positive and finite",
                self.slo.threshold
            ));
        }
        if self.slo.metric == SloMetric::Utilization && self.slo.threshold >= 1.0 {
            return Err(format!(
                "utilization threshold {} must be below 1 (ρ ≥ 1 has no steady state)",
                self.slo.threshold
            ));
        }
        if self.search.min_nodes == 0 {
            return Err("search min_nodes must be at least 1".into());
        }
        if self.search.max_nodes < self.search.min_nodes {
            return Err(format!(
                "search range is empty: max_nodes {} < min_nodes {}",
                self.search.max_nodes, self.search.min_nodes
            ));
        }
        if self.search.max_nodes > MAX_SEARCH_NODES {
            return Err(format!(
                "search max_nodes {} exceeds the supported maximum {}",
                self.search.max_nodes, MAX_SEARCH_NODES
            ));
        }
        if self.block_mb == 0 {
            return Err("block_mb must be at least 1".into());
        }
        if self.container_mb == 0 {
            return Err("container_mb must be at least 1".into());
        }
        Ok(())
    }

    /// The open-arrival evaluation point probing `nodes`.
    fn probe_point(&self, nodes: usize) -> EvalPoint {
        EvalPoint {
            index: 0,
            nodes,
            block_mb: self.block_mb,
            container_mb: self.container_mb,
            scheduler: self.scheduler,
            mix: self.mix.resolve(nodes),
            arrivals: ArrivalSchedule::Batch,
            arrival_rate: Some(self.arrival_rate),
            map_failure_prob: 0.0,
            slow_node_factor: 1.0,
            estimator: self.estimator,
            seed: self.seed,
        }
    }
}

/// One probed configuration, in probe order.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlanProbe {
    /// Node count probed.
    pub nodes: usize,
    /// The SLO metric's predicted value there (`∞` past saturation).
    pub predicted: f64,
    /// Whether it meets the objective.
    pub satisfies: bool,
}

/// The answer to a [`PlanRequest`].
#[derive(Debug, Clone, PartialEq)]
pub struct PlanResult {
    /// Whether any configuration in the range meets the SLO.
    pub feasible: bool,
    /// The cheapest satisfying node count — or, when infeasible, the
    /// largest probed (best-effort) configuration.
    pub nodes: usize,
    /// The SLO metric's predicted value at [`PlanResult::nodes`].
    pub predicted: f64,
    /// The full model point there (responses, makespan, and the open
    /// tail: bottleneck utilization, knee and saturation rates).
    pub point: ModelPoint,
    /// Every configuration probed, in probe order (endpoints first,
    /// then the bisection midpoints).
    pub probes: Vec<PlanProbe>,
}

/// Find the cheapest node count in `req.search` whose predicted SLO
/// metric is within threshold, by endpoint bracketing plus bisection —
/// at most `2 + ⌈log₂(max − min)⌉` model solves, each cached in
/// `cache`. Returns `Err` (with a field-naming message) on invalid
/// requests; an *infeasible* SLO is not an error — the result reports
/// `feasible: false` with the best-effort prediction at `max_nodes`.
pub fn plan(req: &PlanRequest, cache: &ResultCache) -> Result<PlanResult, String> {
    req.check()?;
    let backends = Backends {
        analytic: true,
        profile_calibration: false,
        simulator: None,
    };
    let mut probes = Vec::new();
    let mut solve = |nodes: usize| -> (f64, ModelPoint) {
        let r = evaluate_point(&req.probe_point(nodes), &backends, cache);
        let m = r.model.expect("analytic backend enabled");
        let v = req.slo.metric.extract(&m, req.estimator);
        probes.push(PlanProbe {
            nodes,
            predicted: v,
            satisfies: v <= req.slo.threshold,
        });
        (v, m)
    };

    // Bracket: the largest configuration first — if even it misses the
    // objective, monotonicity says nothing smaller can meet it.
    let (SearchSpace {
        min_nodes: lo,
        max_nodes: hi,
    },) = (req.search,);
    let (v_hi, m_hi) = solve(hi);
    if v_hi > req.slo.threshold {
        return Ok(PlanResult {
            feasible: false,
            nodes: hi,
            predicted: v_hi,
            point: m_hi,
            probes,
        });
    }
    if lo == hi {
        return Ok(PlanResult {
            feasible: true,
            nodes: hi,
            predicted: v_hi,
            point: m_hi,
            probes,
        });
    }
    let (v_lo, m_lo) = solve(lo);
    if v_lo <= req.slo.threshold {
        return Ok(PlanResult {
            feasible: true,
            nodes: lo,
            predicted: v_lo,
            point: m_lo,
            probes,
        });
    }

    // Invariant: `fail` misses the SLO, `pass` meets it; halve until
    // adjacent.
    let (mut fail, mut pass) = (lo, hi);
    let (mut best_v, mut best_m) = (v_hi, m_hi);
    while pass - fail > 1 {
        let mid = fail + (pass - fail) / 2;
        let (v, m) = solve(mid);
        if v <= req.slo.threshold {
            pass = mid;
            best_v = v;
            best_m = m;
        } else {
            fail = mid;
        }
    }
    Ok(PlanResult {
        feasible: true,
        nodes: pass,
        predicted: best_v,
        point: best_m,
        probes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::JobKind;
    use mapreduce_sim::GB;

    fn base_request() -> PlanRequest {
        let mix = WorkloadMix::single(JobKind::WordCount, GB, 1);
        PlanRequest::new(
            mix,
            2e-3,
            SloSpec {
                metric: SloMetric::Response,
                threshold: 0.0, // set per test
            },
        )
    }

    /// Linear-scan ground truth: the smallest node count in the range
    /// whose metric meets the threshold.
    fn cheapest_by_scan(req: &PlanRequest, cache: &ResultCache) -> Option<usize> {
        let backends = Backends {
            analytic: true,
            profile_calibration: false,
            simulator: None,
        };
        (req.search.min_nodes..=req.search.max_nodes).find(|&n| {
            let r = evaluate_point(&req.probe_point(n), &backends, cache);
            let v = req.slo.metric.extract(&r.model.unwrap(), req.estimator);
            v <= req.slo.threshold
        })
    }

    #[test]
    fn bisection_finds_the_cheapest_configuration() {
        let cache = ResultCache::new();
        let mut req = base_request();
        req.search = SearchSpace {
            min_nodes: 1,
            max_nodes: 12,
        };
        // A threshold between the 12-node and 1-node responses
        // exercises a non-trivial bisection.
        let backends = Backends {
            analytic: true,
            profile_calibration: false,
            simulator: None,
        };
        let at = |n: usize| {
            let r = evaluate_point(&req.probe_point(n), &backends, &cache);
            select(&r.model.unwrap(), req.estimator)
        };
        let (fast, slow) = (at(12), at(1));
        assert!(fast < slow, "monotone premise");
        for threshold in [
            fast * 1.02,
            (fast + slow) / 2.0,
            slow * 0.98,
            (3.0 * fast + slow) / 4.0,
        ] {
            req.slo.threshold = threshold;
            let out = plan(&req, &cache).unwrap();
            assert!(out.feasible);
            assert_eq!(
                Some(out.nodes),
                cheapest_by_scan(&req, &cache),
                "bisection must agree with the linear scan at threshold {threshold}"
            );
            assert!(out.predicted <= threshold);
            assert!(out.point.open.is_some(), "plan points are open solves");
            // 2 endpoints + ⌈log₂(11)⌉ = 4 midpoints at most.
            assert!(out.probes.len() <= 6, "{} probes", out.probes.len());
            let last = out.probes.last().unwrap();
            assert!(out.probes.iter().any(|p| p.nodes == out.nodes));
            assert!(last.predicted.is_finite() || !last.satisfies);
        }
    }

    #[test]
    fn infeasible_slo_reports_the_best_effort_point() {
        let cache = ResultCache::new();
        let mut req = base_request();
        req.search = SearchSpace {
            min_nodes: 1,
            max_nodes: 8,
        };
        req.slo.threshold = 1e-6; // nothing is that fast
        let out = plan(&req, &cache).unwrap();
        assert!(!out.feasible);
        assert_eq!(out.nodes, 8, "best effort is the top of the range");
        assert!(out.predicted > req.slo.threshold);
        assert_eq!(out.probes.len(), 1, "the max-nodes probe settles it");
    }

    #[test]
    fn utilization_slo_and_single_point_range() {
        let cache = ResultCache::new();
        let mut req = base_request();
        req.slo = SloSpec {
            metric: SloMetric::Utilization,
            threshold: 0.95,
        };
        req.search = SearchSpace {
            min_nodes: 4,
            max_nodes: 4,
        };
        let out = plan(&req, &cache).unwrap();
        assert_eq!(out.nodes, 4);
        assert_eq!(out.probes.len(), 1);
        assert!(out.feasible);
        assert!(
            (out.predicted - out.point.open.unwrap().bottleneck_utilization).abs() < 1e-15,
            "utilization SLO reads the open tail"
        );
    }

    #[test]
    fn repeat_plans_are_served_from_cache() {
        let cache = ResultCache::new();
        let mut req = base_request();
        req.search = SearchSpace {
            min_nodes: 1,
            max_nodes: 16,
        };
        req.slo.threshold = {
            let backends = Backends {
                analytic: true,
                profile_calibration: false,
                simulator: None,
            };
            let r = evaluate_point(&req.probe_point(8), &backends, &cache);
            select(&r.model.unwrap(), req.estimator) * 1.001
        };
        let first = plan(&req, &cache).unwrap();
        let before = cache.stats();
        let second = plan(&req, &cache).unwrap();
        let after = cache.stats();
        assert_eq!(first, second, "planning is deterministic");
        assert_eq!(after.misses, before.misses, "no new evaluations");
        assert!(
            after.hits >= before.hits + second.probes.len() as u64,
            "every repeat probe is a cache hit"
        );
    }

    #[test]
    fn invalid_requests_name_the_offending_field() {
        let cache = ResultCache::new();
        let mut req = base_request();
        req.slo.threshold = 100.0;
        req.arrival_rate = -1.0;
        assert!(plan(&req, &cache).unwrap_err().contains("arrival_rate"));

        let mut req = base_request();
        req.slo.threshold = f64::NAN;
        assert!(plan(&req, &cache).unwrap_err().contains("threshold"));

        let mut req = base_request();
        req.slo = SloSpec {
            metric: SloMetric::Utilization,
            threshold: 1.5,
        };
        assert!(plan(&req, &cache).unwrap_err().contains("utilization"));

        let mut req = base_request();
        req.slo.threshold = 100.0;
        req.search = SearchSpace {
            min_nodes: 8,
            max_nodes: 2,
        };
        assert!(plan(&req, &cache).unwrap_err().contains("max_nodes"));

        let mut req = base_request();
        req.slo.threshold = 100.0;
        req.search.max_nodes = MAX_SEARCH_NODES + 1;
        assert!(plan(&req, &cache).unwrap_err().contains("maximum"));

        assert_eq!(SloMetric::parse("response"), Some(SloMetric::Response));
        assert_eq!(SloMetric::parse("makespan"), Some(SloMetric::Makespan));
        assert_eq!(
            SloMetric::parse("utilization"),
            Some(SloMetric::Utilization)
        );
        assert_eq!(SloMetric::parse("p99"), None);
    }
}
