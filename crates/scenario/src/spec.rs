//! Declarative scenario specifications.
//!
//! A [`Scenario`] names a set of *axes* — cluster shape, workload shape,
//! and estimator — and how to combine them ([`SweepMode`]). Expansion
//! (module [`crate::expand`]) turns the spec into concrete
//! [`crate::EvalPoint`]s; it never runs anything itself, so specs are
//! cheap to build, inspect, and compare.
//!
//! The workload axis is a first-class [`WorkloadMix`]: an ordered list
//! of [`MixEntry`]s — `(job kind, input size, count, reduce policy,
//! submit offset)` — so one point can run WordCount, TeraSort, and Grep
//! concurrently on the same cluster. The `axis_jobs` /
//! `axis_input_bytes` / `axis_n_jobs` builders remain as thin
//! conveniences that cross three single-entry lists into 1-entry mixes,
//! so homogeneous sweeps read the way they always did.
//!
//! *When* the jobs arrive is its own dimension: every entry carries a
//! `submit_offset_ms` (trace replay assigns each replayed job its
//! recorded arrival), and the scenario-level [`ArrivalSchedule`] axis
//! layers batch, staggered, or explicit-trace offsets on top.

use crate::cache::KeyHasher;
use mapreduce_sim::{JobSpec, SchedulerPolicy, SimConfig, GB, MB};

/// Which workload preset a point runs (see `mapreduce_sim::workload`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum JobKind {
    /// WordCount: CPU-heavy maps, shuffle ≈ input.
    WordCount,
    /// TeraSort-like: I/O-heavy on both sides.
    TeraSort,
    /// Grep-like: map-heavy, tiny intermediate data.
    Grep,
}

impl JobKind {
    /// Stable name used in reports and cache keys.
    pub fn name(&self) -> &'static str {
        match self {
            JobKind::WordCount => "wordcount",
            JobKind::TeraSort => "terasort",
            JobKind::Grep => "grep",
        }
    }

    /// Build the concrete job spec for this kind. `reduces` is used as
    /// given for every kind; [`Scenario::check`] validates counts
    /// centrally, so no per-kind fix-ups happen here.
    pub fn spec(&self, input_bytes: u64, reduces: u32) -> JobSpec {
        match self {
            JobKind::WordCount => mapreduce_sim::workload::wordcount(input_bytes, reduces),
            JobKind::TeraSort => mapreduce_sim::workload::terasort(input_bytes, reduces),
            JobKind::Grep => {
                let mut s = mapreduce_sim::workload::grep(input_bytes);
                s.reduces = reduces;
                s
            }
        }
    }
}

/// How many reduce tasks a job gets at a given cluster size.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReducePolicy {
    /// One reduce per node — one reduce wave, the paper's sizing rule.
    PerNode,
    /// A fixed reduce count regardless of cluster size.
    Fixed(u32),
}

impl ReducePolicy {
    /// Reduce count for a cluster of `nodes` workers, rejecting counts
    /// that are zero or don't fit the simulator's 32-bit reduce field —
    /// the checked form [`Scenario::check`] applies to every
    /// `(nodes, entry)` combination before anything runs.
    pub fn try_reduces(&self, nodes: usize) -> Result<u32, String> {
        match *self {
            ReducePolicy::PerNode => u32::try_from(nodes)
                .ok()
                .filter(|&r| r > 0)
                .ok_or_else(|| format!("per-node reduce count invalid for {nodes} nodes")),
            ReducePolicy::Fixed(0) => Err("fixed reduce count must be positive".into()),
            ReducePolicy::Fixed(r) => Ok(r),
        }
    }

    /// Reduce count for a cluster of `nodes` workers. Panics on counts
    /// [`ReducePolicy::try_reduces`] rejects; expansion only calls this
    /// after [`Scenario::check`] has validated every combination.
    pub fn reduces(&self, nodes: usize) -> u32 {
        self.try_reduces(nodes)
            .expect("reduce counts validated by Scenario::check")
    }
}

/// One entry of a [`WorkloadMix`]: `count` copies of one job kind at
/// one input size, with its own reduce-sizing rule and submit offset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MixEntry {
    /// Workload preset.
    pub job: JobKind,
    /// Input dataset size, bytes.
    pub input_bytes: u64,
    /// Concurrent copies of this job in the mix (≥ 1).
    pub count: usize,
    /// Reduce-count sizing rule for this entry.
    pub reduces: ReducePolicy,
    /// Submission offset of this entry's jobs, milliseconds after the
    /// point's t = 0 (all copies share it; an [`ArrivalSchedule`] layers
    /// additional per-job offsets on top). Milliseconds as integers —
    /// the native resolution of Hadoop job-history timestamps — keep
    /// the canonical hashed form exact.
    pub submit_offset_ms: u64,
}

impl MixEntry {
    /// An entry with the default per-node reduce sizing, submitted at
    /// t = 0.
    pub fn new(job: JobKind, input_bytes: u64, count: usize) -> MixEntry {
        MixEntry {
            job,
            input_bytes,
            count,
            reduces: ReducePolicy::PerNode,
            submit_offset_ms: 0,
        }
    }

    /// Override the reduce-sizing rule.
    pub fn with_reduces(mut self, reduces: ReducePolicy) -> MixEntry {
        self.reduces = reduces;
        self
    }

    /// Override the submission offset (milliseconds after t = 0).
    pub fn at_offset_ms(mut self, submit_offset_ms: u64) -> MixEntry {
        self.submit_offset_ms = submit_offset_ms;
        self
    }

    /// Stable class label (`wordcount@1024MB`) identifying this entry's
    /// job class across points in reports — `count` and submit offset
    /// are deliberately excluded so bands aggregate over the count axis
    /// and across arrival positions.
    pub fn label(&self) -> String {
        format!("{}@{}MB", self.job.name(), self.input_bytes / MB)
    }

    /// Stable display name (`2xwordcount@1024MB`, with `:r4` appended
    /// for a fixed reduce count and `+500ms` for a nonzero submit
    /// offset).
    pub fn name(&self) -> String {
        let reduces = match self.reduces {
            ReducePolicy::PerNode => String::new(),
            ReducePolicy::Fixed(r) => format!(":r{r}"),
        };
        format!(
            "{}x{}{}{}",
            self.count,
            self.label(),
            reduces,
            offset_suffix(self.submit_offset_ms)
        )
    }
}

/// The `+500ms` display suffix for a nonzero submit offset, shared by
/// the entry and resolved-mix names so the two forms can't diverge.
fn offset_suffix(submit_offset_ms: u64) -> String {
    if submit_offset_ms > 0 {
        format!("+{submit_offset_ms}ms")
    } else {
        String::new()
    }
}

/// A heterogeneous workload: an ordered, non-empty list of
/// [`MixEntry`]s submitted to one cluster, each at its own
/// `submit_offset_ms` (0 by default — the batch case).
///
/// The entry order is semantic — it is the submission order of the
/// simulator's job list, the class order of the solver's multi-class
/// input, and the index order of every per-class result — and it is
/// part of the canonical hashed form.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct WorkloadMix {
    /// The entries, in submission order.
    pub entries: Vec<MixEntry>,
}

impl WorkloadMix {
    /// A mix from a list of entries.
    pub fn new(entries: impl Into<Vec<MixEntry>>) -> WorkloadMix {
        WorkloadMix {
            entries: entries.into(),
        }
    }

    /// A 1-entry mix — `count` copies of one job (the shape the
    /// `axis_jobs`-style conveniences produce).
    pub fn single(job: JobKind, input_bytes: u64, count: usize) -> WorkloadMix {
        WorkloadMix {
            entries: vec![MixEntry::new(job, input_bytes, count)],
        }
    }

    /// Append an entry (builder style).
    pub fn and(mut self, entry: MixEntry) -> WorkloadMix {
        self.entries.push(entry);
        self
    }

    /// Total concurrent jobs across all entries.
    pub fn total_jobs(&self) -> usize {
        self.entries.iter().map(|e| e.count).sum()
    }

    /// Stable display name: entry names joined with ` + `.
    pub fn name(&self) -> String {
        self.entries
            .iter()
            .map(MixEntry::name)
            .collect::<Vec<_>>()
            .join(" + ")
    }

    /// Validate the mix against a scenario's node axis: entries present,
    /// counts positive, and every `(nodes, entry)` reduce count valid.
    pub fn check(&self, nodes_axis: &[usize]) -> Result<(), String> {
        if self.entries.is_empty() {
            return Err("workload mix has no entries".into());
        }
        for e in &self.entries {
            if e.count == 0 {
                return Err(format!("mix entry `{}` has count 0", e.label()));
            }
            for &nodes in nodes_axis {
                e.reduces
                    .try_reduces(nodes)
                    .map_err(|err| format!("mix entry `{}`: {err}", e.label()))?;
            }
        }
        Ok(())
    }

    /// Resolve the reduce policies at a concrete cluster size.
    pub fn resolve(&self, nodes: usize) -> ResolvedMix {
        ResolvedMix {
            entries: self
                .entries
                .iter()
                .map(|e| ResolvedEntry {
                    job: e.job,
                    input_bytes: e.input_bytes,
                    count: e.count,
                    reduces: e.reduces.reduces(nodes),
                    submit_offset_ms: e.submit_offset_ms,
                })
                .collect(),
        }
    }
}

/// A [`MixEntry`] with its reduce policy resolved to a concrete count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ResolvedEntry {
    /// Workload preset.
    pub job: JobKind,
    /// Input dataset size, bytes.
    pub input_bytes: u64,
    /// Concurrent copies of this job in the mix.
    pub count: usize,
    /// Reduce tasks per job.
    pub reduces: u32,
    /// Submission offset, milliseconds after the point's t = 0.
    pub submit_offset_ms: u64,
}

impl ResolvedEntry {
    /// The concrete job spec of this class.
    pub fn spec(&self) -> JobSpec {
        self.job.spec(self.input_bytes, self.reduces)
    }

    /// Stable class label (`wordcount@1024MB`), matching
    /// [`MixEntry::label`].
    pub fn label(&self) -> String {
        format!("{}@{}MB", self.job.name(), self.input_bytes / MB)
    }
}

/// A [`WorkloadMix`] at a concrete cluster size — what an
/// [`EvalPoint`] carries.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ResolvedMix {
    /// The resolved entries, in submission order.
    pub entries: Vec<ResolvedEntry>,
}

impl ResolvedMix {
    /// Total concurrent jobs across all entries.
    pub fn total_jobs(&self) -> usize {
        self.entries.iter().map(|e| e.count).sum()
    }

    /// Stable display name (`2xwordcount@1024MB+1xgrep@1024MB`, with
    /// `+500ms` appended per entry for nonzero submit offsets).
    pub fn name(&self) -> String {
        self.entries
            .iter()
            .map(|e| {
                format!(
                    "{}x{}{}",
                    e.count,
                    e.label(),
                    offset_suffix(e.submit_offset_ms)
                )
            })
            .collect::<Vec<_>>()
            .join("+")
    }

    /// The full concurrent job list, `count` copies per entry in
    /// submission order.
    pub fn job_specs(&self) -> Vec<JobSpec> {
        let mut specs = Vec::with_capacity(self.total_jobs());
        for e in &self.entries {
            let spec = e.spec();
            for _ in 0..e.count {
                specs.push(spec.clone());
            }
        }
        specs
    }

    /// Mix the canonical form into a cache key: entry count, then per
    /// entry its job name, input size, copy count, resolved reduce
    /// count, and submit offset. Entry order is part of the form.
    pub fn hash_into(&self, h: KeyHasher) -> KeyHasher {
        let mut h = h.u64(self.entries.len() as u64);
        for e in &self.entries {
            h = h
                .str(e.job.name())
                .u64(e.input_bytes)
                .u64(e.count as u64)
                .u64(e.reduces as u64)
                .u64(e.submit_offset_ms);
        }
        h
    }
}

/// How a point's jobs arrive over time, layered on top of the per-entry
/// submit offsets — a first-class workload dimension
/// ([`Scenario::axis_arrivals`]).
///
/// Offsets are milliseconds as integers (the native resolution of
/// Hadoop job-history timestamps), so the canonical hashed form — and
/// therefore every cache key — is exact.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum ArrivalSchedule {
    /// Every job at its entry's own offset (t = 0 by default) — the
    /// paper's assumption and the pre-arrival-schedule behaviour.
    Batch,
    /// Job `i` (flattened submission order) arrives `i × interval_ms`
    /// after its entry offset — a constant-rate open-loop approximation.
    Staggered {
        /// Gap between consecutive arrivals, milliseconds.
        interval_ms: u64,
    },
    /// Explicit per-job offsets in submission order; must carry exactly
    /// one offset per job of the mix it is paired with
    /// ([`ArrivalSchedule::check`]).
    Trace {
        /// Per-job offsets, milliseconds.
        offsets_ms: Vec<u64>,
    },
}

impl ArrivalSchedule {
    /// Stable display name used in reports and CSV (`batch`,
    /// `stagger@500ms`, `trace[12]`).
    pub fn name(&self) -> String {
        match self {
            ArrivalSchedule::Batch => "batch".into(),
            ArrivalSchedule::Staggered { interval_ms } => format!("stagger@{interval_ms}ms"),
            ArrivalSchedule::Trace { offsets_ms } => format!("trace[{}]", offsets_ms.len()),
        }
    }

    /// Mix the canonical form into a cache key (tag plus payload, so
    /// `Batch` and `Staggered(0)` stay distinct forms even though they
    /// evaluate identically).
    pub fn hash_into(&self, h: KeyHasher) -> KeyHasher {
        match self {
            ArrivalSchedule::Batch => h.str("batch"),
            ArrivalSchedule::Staggered { interval_ms } => h.str("stagger").u64(*interval_ms),
            ArrivalSchedule::Trace { offsets_ms } => {
                let mut h = h.str("trace").u64(offsets_ms.len() as u64);
                for &o in offsets_ms {
                    h = h.u64(o);
                }
                h
            }
        }
    }

    /// Validate the schedule against a mix it would be paired with: a
    /// `Trace` must carry exactly one offset per job.
    pub fn check(&self, mix: &WorkloadMix) -> Result<(), String> {
        if let ArrivalSchedule::Trace { offsets_ms } = self {
            let jobs = mix.total_jobs();
            if offsets_ms.len() != jobs {
                return Err(format!(
                    "trace arrival schedule has {} offsets but mix `{}` has {jobs} jobs",
                    offsets_ms.len(),
                    mix.name()
                ));
            }
        }
        Ok(())
    }

    /// The additional offset (seconds) of job `j` in flattened
    /// submission order.
    fn offset_secs(&self, j: usize) -> f64 {
        let ms = match self {
            ArrivalSchedule::Batch => 0,
            ArrivalSchedule::Staggered { interval_ms } => (j as u64).saturating_mul(*interval_ms),
            ArrivalSchedule::Trace { offsets_ms } => offsets_ms[j],
        };
        ms as f64 / 1000.0
    }
}

/// Which series a point contributes to the report.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EstimatorKind {
    /// Fork/join-based modified MVA (the paper's best method).
    ForkJoin,
    /// Tripathi-based estimate.
    Tripathi,
    /// ARIA bounds baseline.
    Aria,
    /// Herodotou static baseline.
    Herodotou,
}

impl EstimatorKind {
    /// Every estimator series, in paper order.
    pub const ALL: [EstimatorKind; 4] = [
        EstimatorKind::ForkJoin,
        EstimatorKind::Tripathi,
        EstimatorKind::Aria,
        EstimatorKind::Herodotou,
    ];

    /// Stable name used in reports and cache keys.
    pub fn name(&self) -> &'static str {
        match self {
            EstimatorKind::ForkJoin => "fork_join",
            EstimatorKind::Tripathi => "tripathi",
            EstimatorKind::Aria => "aria",
            EstimatorKind::Herodotou => "herodotou",
        }
    }
}

/// How the axes combine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SweepMode {
    /// Full cross product of every axis (the default).
    #[default]
    Cartesian,
    /// Lock-step: point `i` takes the `i`-th value of every axis;
    /// length-1 axes broadcast. All longer axes must agree on a length.
    Zip,
}

/// Which evaluation backends run for every point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Backends {
    /// Run the analytic model (fork/join + Tripathi + both baselines).
    pub analytic: bool,
    /// Calibrate the model from single-job profiling runs of the
    /// simulator (the paper's "job history"; §4.2.1) — one profile per
    /// mix entry. Only meaningful with `analytic`.
    pub profile_calibration: bool,
    /// Run the discrete-event simulator for ground truth: `Some(reps)`
    /// repeats each point `reps` times on consecutive seeds and reports
    /// the median (§5.1 methodology).
    pub simulator: Option<usize>,
}

impl Default for Backends {
    fn default() -> Self {
        Backends {
            analytic: true,
            profile_calibration: true,
            simulator: Some(5),
        }
    }
}

impl Backends {
    /// Analytic model only — the fast path for large sweeps.
    pub fn analytic_only() -> Backends {
        Backends {
            analytic: true,
            profile_calibration: false,
            simulator: None,
        }
    }
}

/// The workload axis of a [`Scenario`].
///
/// Both shapes expand to a list of [`WorkloadMix`]es; `Grid` is the
/// convenience the `axis_jobs` / `axis_input_bytes` / `axis_n_jobs`
/// builders populate, crossing three single-entry lists exactly the
/// way the pre-mix triple of axes did (jobs outermost, N innermost; in
/// zip mode the three remain independent lock-step axes).
#[derive(Debug, Clone, PartialEq)]
pub enum WorkloadAxis {
    /// Homogeneous points from three crossed single-value lists; every
    /// point runs `n_jobs` identical copies of one job, reduce counts
    /// from the scenario-level [`Scenario::reduces`] policy.
    Grid {
        /// Job presets.
        jobs: Vec<JobKind>,
        /// Input dataset sizes, bytes.
        input_bytes: Vec<u64>,
        /// Multiprogramming levels (concurrent identical jobs).
        n_jobs: Vec<usize>,
    },
    /// Explicit heterogeneous mixes; each value is one axis position.
    Mixes(Vec<WorkloadMix>),
}

impl WorkloadAxis {
    /// Per-axis lengths this workload contributes to the sweep, with
    /// names for error messages (`Grid` contributes three independent
    /// axes, `Mixes` one).
    fn lens(&self) -> Vec<(&'static str, usize)> {
        match self {
            WorkloadAxis::Grid {
                jobs,
                input_bytes,
                n_jobs,
            } => vec![
                ("jobs", jobs.len()),
                ("input_bytes", input_bytes.len()),
                ("n_jobs", n_jobs.len()),
            ],
            WorkloadAxis::Mixes(m) => vec![("mixes", m.len())],
        }
    }

    /// The concrete mix values of the axis in cartesian expansion order
    /// (`Grid`: jobs → input_bytes → n_jobs, rightmost fastest).
    fn values(&self, default_reduces: ReducePolicy) -> Vec<WorkloadMix> {
        match self {
            WorkloadAxis::Grid {
                jobs,
                input_bytes,
                n_jobs,
            } => {
                let mut out = Vec::with_capacity(jobs.len() * input_bytes.len() * n_jobs.len());
                for &job in jobs {
                    for &input in input_bytes {
                        for &n in n_jobs {
                            out.push(WorkloadMix {
                                entries: vec![
                                    MixEntry::new(job, input, n).with_reduces(default_reduces)
                                ],
                            });
                        }
                    }
                }
                out
            }
            WorkloadAxis::Mixes(m) => m.clone(),
        }
    }
}

/// A declarative what-if sweep over cluster, workload, and estimator
/// axes.
///
/// Build one with [`Scenario::new`] and the `axis_*` setters, expand it
/// with [`crate::expand`], run it with [`crate::run_scenario`].
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Human-readable name; also part of every cache key's provenance
    /// (but *not* of the content hash — identical points in differently
    /// named scenarios share cache entries).
    pub name: String,
    /// How the axes combine.
    pub sweep: SweepMode,
    /// Cluster axis: worker node count.
    pub nodes: Vec<usize>,
    /// Cluster axis: HDFS block size (MiB).
    pub block_mb: Vec<u64>,
    /// Cluster axis: task container size (MiB of memory, 1 vcore).
    pub container_mb: Vec<u32>,
    /// Cluster axis: RM scheduler policy.
    pub schedulers: Vec<SchedulerPolicy>,
    /// Workload axis: homogeneous grid or explicit heterogeneous mixes.
    pub workload: WorkloadAxis,
    /// Arrival axis: how each point's jobs are spread over time, on top
    /// of the per-entry submit offsets. Both backends respond — the
    /// simulator submits at the scheduled times, the analytic model
    /// applies the windowed staggered-arrival approximation.
    pub arrivals: Vec<ArrivalSchedule>,
    /// Open-arrival axis: total Poisson rate λ (jobs/second) of the
    /// point's job stream; `None` is the closed (batch/scheduled) case.
    /// With a rate set, the analytic model switches to the open
    /// steady-state solve (`mr2_model::eval_open_mix` — responses,
    /// bottleneck utilization, and the saturation knee over λ) and the
    /// simulator samples arrival times from the Poisson process
    /// deterministically by seed. Only combinable with
    /// [`ArrivalSchedule::Batch`] — a rate *is* the schedule.
    pub arrival_rate: Vec<Option<f64>>,
    /// Failure axis: probability that a map attempt fails mid-read and
    /// is re-executed (`SimConfig::map_failure_prob`; the analytic
    /// model has no failure notion, so only the simulator and the
    /// profiling runs respond to it).
    pub map_failure_prob: Vec<f64>,
    /// Straggler axis: slowdown factor of node 0
    /// (`SimConfig::slow_node_factor`; 1.0 = homogeneous). Like the
    /// failure axis, only the simulator and the profiling runs respond
    /// — the analytic model assumes homogeneous nodes, and the error
    /// bands quantify where that breaks.
    pub slow_node_factor: Vec<f64>,
    /// Estimator axis: which model series each point reports.
    pub estimators: Vec<EstimatorKind>,
    /// Reduce-count sizing rule for `Grid` workloads (explicit mixes
    /// carry a policy per entry).
    pub reduces: ReducePolicy,
    /// Backends evaluated per point.
    pub backends: Backends,
    /// Base RNG seed for simulator replications.
    pub seed: u64,
}

impl Scenario {
    /// A single-point scenario (4 nodes, 1 GB WordCount, N = 1,
    /// fork/join) to grow from with the `axis_*` setters.
    pub fn new(name: impl Into<String>) -> Scenario {
        Scenario {
            name: name.into(),
            sweep: SweepMode::Cartesian,
            nodes: vec![4],
            block_mb: vec![128],
            container_mb: vec![1024],
            schedulers: vec![SchedulerPolicy::CapacityFifo],
            workload: WorkloadAxis::Grid {
                jobs: vec![JobKind::WordCount],
                input_bytes: vec![GB],
                n_jobs: vec![1],
            },
            arrivals: vec![ArrivalSchedule::Batch],
            arrival_rate: vec![None],
            map_failure_prob: vec![0.0],
            slow_node_factor: vec![1.0],
            estimators: vec![EstimatorKind::ForkJoin],
            reduces: ReducePolicy::PerNode,
            backends: Backends::default(),
            seed: 1,
        }
    }

    /// Set the node-count axis.
    pub fn axis_nodes(mut self, v: impl Into<Vec<usize>>) -> Self {
        self.nodes = v.into();
        self
    }

    /// Set the block-size axis (MiB).
    pub fn axis_block_mb(mut self, v: impl Into<Vec<u64>>) -> Self {
        self.block_mb = v.into();
        self
    }

    /// Set the container-size axis (MiB).
    pub fn axis_container_mb(mut self, v: impl Into<Vec<u32>>) -> Self {
        self.container_mb = v.into();
        self
    }

    /// Set the scheduler axis.
    pub fn axis_schedulers(mut self, v: impl Into<Vec<SchedulerPolicy>>) -> Self {
        self.schedulers = v.into();
        self
    }

    /// The three `Grid` lists, for the convenience setters. Panics when
    /// the workload axis holds explicit mixes — the two styles don't
    /// compose (which list would a lone `axis_jobs` refine?).
    fn grid_mut(&mut self, setter: &str) -> (&mut Vec<JobKind>, &mut Vec<u64>, &mut Vec<usize>) {
        match &mut self.workload {
            WorkloadAxis::Grid {
                jobs,
                input_bytes,
                n_jobs,
            } => (jobs, input_bytes, n_jobs),
            WorkloadAxis::Mixes(_) => panic!(
                "{setter}: the workload axis already holds explicit mixes; \
                 build the whole axis with axis_mixes instead"
            ),
        }
    }

    /// Set the job-preset list of the workload grid.
    pub fn axis_jobs(mut self, v: impl Into<Vec<JobKind>>) -> Self {
        *self.grid_mut("axis_jobs").0 = v.into();
        self
    }

    /// Set the input-size list of the workload grid (bytes).
    pub fn axis_input_bytes(mut self, v: impl Into<Vec<u64>>) -> Self {
        *self.grid_mut("axis_input_bytes").1 = v.into();
        self
    }

    /// Set the multiprogramming-level list of the workload grid.
    pub fn axis_n_jobs(mut self, v: impl Into<Vec<usize>>) -> Self {
        *self.grid_mut("axis_n_jobs").2 = v.into();
        self
    }

    /// Set the workload axis to an explicit list of heterogeneous
    /// mixes, replacing the grid conveniences.
    pub fn axis_mixes(mut self, v: impl Into<Vec<WorkloadMix>>) -> Self {
        self.workload = WorkloadAxis::Mixes(v.into());
        self
    }

    /// Set the arrival-schedule axis.
    pub fn axis_arrivals(mut self, v: impl Into<Vec<ArrivalSchedule>>) -> Self {
        self.arrivals = v.into();
        self
    }

    /// Set the open-arrival (Poisson λ, jobs/second) axis. Every value
    /// opens the point's job stream at that total rate; use
    /// [`Scenario::axis_arrival_rate_opt`] to mix open and closed
    /// points in one sweep.
    pub fn axis_arrival_rate(mut self, v: impl Into<Vec<f64>>) -> Self {
        self.arrival_rate = v.into().into_iter().map(Some).collect();
        self
    }

    /// Set the open-arrival axis with explicit closed (`None`) slots.
    pub fn axis_arrival_rate_opt(mut self, v: impl Into<Vec<Option<f64>>>) -> Self {
        self.arrival_rate = v.into();
        self
    }

    /// Set the map-failure-probability axis.
    pub fn axis_map_failure_prob(mut self, v: impl Into<Vec<f64>>) -> Self {
        self.map_failure_prob = v.into();
        self
    }

    /// Set the straggler (slow-node slowdown factor) axis.
    pub fn axis_slow_node_factor(mut self, v: impl Into<Vec<f64>>) -> Self {
        self.slow_node_factor = v.into();
        self
    }

    /// Set the estimator axis.
    pub fn axis_estimators(mut self, v: impl Into<Vec<EstimatorKind>>) -> Self {
        self.estimators = v.into();
        self
    }

    /// Set the sweep mode.
    pub fn sweep_mode(mut self, m: SweepMode) -> Self {
        self.sweep = m;
        self
    }

    /// Set the reduce-count rule for `Grid` workloads.
    pub fn reduce_policy(mut self, r: ReducePolicy) -> Self {
        self.reduces = r;
        self
    }

    /// Set the backends.
    pub fn with_backends(mut self, b: Backends) -> Self {
        self.backends = b;
        self
    }

    /// Set the base seed.
    pub fn with_seed(mut self, s: u64) -> Self {
        self.seed = s;
        self
    }

    /// Panic with a description if the spec is invalid (see
    /// [`Scenario::check`]).
    pub fn validate(&self) {
        if let Err(e) = self.check() {
            panic!("{e}");
        }
    }

    /// The non-panicking form of [`Scenario::validate`], for callers —
    /// like a serving layer — that must turn a bad spec into an error
    /// response rather than a crash. Checks axis presence, zip lengths,
    /// failure-probability ranges, and — centrally, before anything
    /// runs — every `(nodes, mix entry)` reduce-count resolution.
    pub fn check(&self) -> Result<(), String> {
        for (name, len) in self.axis_lens() {
            if len == 0 {
                return Err(format!("{name} axis is empty"));
            }
        }
        if !(self.backends.analytic || self.backends.simulator.is_some()) {
            return Err("at least one backend must be enabled".into());
        }
        for &p in &self.map_failure_prob {
            if !(0.0..1.0).contains(&p) {
                return Err(format!("map_failure_prob {p} outside [0, 1)"));
            }
        }
        for &f in &self.slow_node_factor {
            if !(f.is_finite() && f >= 1.0) {
                return Err(format!(
                    "slow_node_factor {f} must be a finite slowdown >= 1"
                ));
            }
        }
        for r in self.arrival_rate.iter().flatten() {
            if !(r.is_finite() && *r > 0.0) {
                return Err(format!(
                    "arrival_rate {r} must be a positive finite rate (jobs/second)"
                ));
            }
        }
        // An open rate *is* the arrival process; layering a staggered or
        // trace schedule under it would double-schedule the same jobs.
        // The conservative any-pairing check applies to both sweep
        // modes.
        if self.arrival_rate.iter().any(Option::is_some)
            && self
                .arrivals
                .iter()
                .any(|a| !matches!(a, ArrivalSchedule::Batch))
        {
            return Err("arrival_rate combines only with batch arrivals \
                 (an open rate replaces the schedule)"
                .into());
        }
        match &self.workload {
            WorkloadAxis::Grid { n_jobs, .. } => {
                if let Some(n) = n_jobs.iter().find(|&&n| n == 0) {
                    return Err(format!("n_jobs value {n} must be positive"));
                }
                for &nodes in &self.nodes {
                    self.reduces.try_reduces(nodes)?;
                }
            }
            WorkloadAxis::Mixes(mixes) => {
                for m in mixes {
                    m.check(&self.nodes)?;
                }
            }
        }
        if self.sweep == SweepMode::Zip {
            let lens = self.axis_lens();
            let max = lens.iter().map(|&(_, l)| l).max().unwrap();
            for (name, len) in lens {
                if len != max && len != 1 {
                    return Err(format!(
                        "zip axis {name} has length {len}, expected {max} or 1"
                    ));
                }
            }
        }
        // Every (mix, arrival schedule) pairing the sweep will actually
        // evaluate must be consistent: a `Trace` schedule needs exactly
        // one offset per job. Cartesian pairs every mix with every
        // schedule; zip pairs position-wise (with length-1 broadcast).
        // Only `Trace` can fail, so the pairing walk is skipped for the
        // common batch/staggered axes — it would otherwise materialize
        // the whole workload grid just to validate nothing.
        if self
            .arrivals
            .iter()
            .any(|a| matches!(a, ArrivalSchedule::Trace { .. }))
        {
            match self.sweep {
                SweepMode::Cartesian => {
                    let mixes = self.workload_values();
                    for a in &self.arrivals {
                        for m in &mixes {
                            a.check(m)?;
                        }
                    }
                }
                SweepMode::Zip => {
                    let pick = |i: usize, len: usize| if len == 1 { 0 } else { i };
                    for i in 0..self.num_points() {
                        self.arrivals[pick(i, self.arrivals.len())]
                            .check(&self.zip_workload_at(i))?;
                    }
                }
            }
        }
        Ok(())
    }

    /// The workload mix at zip position `i`: a `Grid` zips its three
    /// lists independently (each broadcasting on its own), an explicit
    /// mix list zips as one axis. Shared by [`Scenario::check`] and the
    /// expander so validation covers exactly what runs.
    pub(crate) fn zip_workload_at(&self, i: usize) -> WorkloadMix {
        let pick = |i: usize, len: usize| if len == 1 { 0 } else { i };
        match &self.workload {
            WorkloadAxis::Grid {
                jobs,
                input_bytes,
                n_jobs,
            } => WorkloadMix::new([MixEntry::new(
                jobs[pick(i, jobs.len())],
                input_bytes[pick(i, input_bytes.len())],
                n_jobs[pick(i, n_jobs.len())],
            )
            .with_reduces(self.reduces)]),
            WorkloadAxis::Mixes(m) => m[pick(i, m.len())].clone(),
        }
    }

    /// Names and lengths of every axis, in expansion order. The
    /// workload axis contributes three entries in `Grid` shape and one
    /// in `Mixes` shape.
    pub fn axis_lens(&self) -> Vec<(&'static str, usize)> {
        let mut lens = vec![
            ("nodes", self.nodes.len()),
            ("block_mb", self.block_mb.len()),
            ("container_mb", self.container_mb.len()),
            ("schedulers", self.schedulers.len()),
        ];
        lens.extend(self.workload.lens());
        lens.push(("arrivals", self.arrivals.len()));
        lens.push(("arrival_rate", self.arrival_rate.len()));
        lens.push(("map_failure_prob", self.map_failure_prob.len()));
        lens.push(("slow_node_factor", self.slow_node_factor.len()));
        lens.push(("estimators", self.estimators.len()));
        lens
    }

    /// The workload axis as concrete mix values, in cartesian expansion
    /// order.
    pub fn workload_values(&self) -> Vec<WorkloadMix> {
        self.workload.values(self.reduces)
    }

    /// Number of points the scenario expands to.
    /// Saturates at `usize::MAX` instead of wrapping, so a size guard
    /// (`num_points() > limit`) stays sound for absurd axis products —
    /// a service must bounce those, not expand them.
    pub fn num_points(&self) -> usize {
        let lens = self.axis_lens();
        match self.sweep {
            SweepMode::Cartesian => lens
                .iter()
                .try_fold(1usize, |acc, &(_, len)| acc.checked_mul(len))
                .unwrap_or(usize::MAX),
            SweepMode::Zip => lens.into_iter().map(|(_, l)| l).max().unwrap_or(0),
        }
    }
}

/// One fully concrete configuration produced by expanding a
/// [`Scenario`].
#[derive(Debug, Clone, PartialEq)]
pub struct EvalPoint {
    /// Position in the scenario's expansion order.
    pub index: usize,
    /// Worker node count.
    pub nodes: usize,
    /// HDFS block size, MiB.
    pub block_mb: u64,
    /// Task container memory, MiB.
    pub container_mb: u32,
    /// RM scheduler.
    pub scheduler: SchedulerPolicy,
    /// The workload mix, reduce counts resolved at `nodes`.
    pub mix: ResolvedMix,
    /// How the mix's jobs arrive over time.
    pub arrivals: ArrivalSchedule,
    /// Total Poisson arrival rate λ (jobs/second); `None` is the closed
    /// (batch/scheduled) case.
    pub arrival_rate: Option<f64>,
    /// Map-attempt failure probability (simulator backends only).
    pub map_failure_prob: f64,
    /// Node-0 slowdown factor — straggler injection (simulator backends
    /// only; 1.0 = homogeneous).
    pub slow_node_factor: f64,
    /// Reported estimator series.
    pub estimator: EstimatorKind,
    /// Base simulator seed.
    pub seed: u64,
}

impl EvalPoint {
    /// The simulator/model cluster configuration for this point.
    pub fn sim_config(&self) -> SimConfig {
        let mut cfg = SimConfig::paper_testbed(self.nodes);
        cfg.block_size = self.block_mb * MB;
        cfg.container_size = yarn_sim::ResourceVector::new(self.container_mb.into(), 1);
        cfg.scheduler = self.scheduler;
        cfg.map_failure_prob = self.map_failure_prob;
        cfg.slow_node_factor = self.slow_node_factor;
        cfg.seed = self.seed;
        cfg
    }

    /// Total concurrent jobs at this point.
    pub fn total_jobs(&self) -> usize {
        self.mix.total_jobs()
    }

    /// The full concurrent job list for this point, in submission
    /// order.
    pub fn job_specs(&self) -> Vec<JobSpec> {
        self.mix.job_specs()
    }

    /// Every job's submission time in seconds, in submission order:
    /// the entry's own offset plus the arrival schedule's per-job
    /// offset. All zeros under default (batch, offset-free) workloads.
    ///
    /// With an open [`EvalPoint::arrival_rate`], the offsets are
    /// instead one sampled Poisson-process realization — exponential
    /// interarrivals at rate λ, cumulated over the flattened submission
    /// order — drawn deterministically from the point's seed, so the
    /// simulator sees the arrival process the open model solves for
    /// and identical points stay content-addressable.
    pub fn submit_offsets(&self) -> Vec<f64> {
        let total = self.total_jobs();
        if let Some(rate) = self.arrival_rate {
            let mut rng = self.seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ 0x243f_6a88_85a3_08d3;
            let mut t = 0.0;
            return (0..total)
                .map(|_| {
                    // splitmix64 → uniform in (0, 1] → exponential.
                    rng = rng.wrapping_add(0x9e37_79b9_7f4a_7c15);
                    let mut z = rng;
                    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                    z ^= z >> 31;
                    let u = ((z >> 11) as f64 + 1.0) / (1u64 << 53) as f64;
                    t += -u.ln() / rate;
                    t
                })
                .collect();
        }
        let mut out = Vec::with_capacity(total);
        let mut j = 0;
        for e in &self.mix.entries {
            for _ in 0..e.count {
                out.push(e.submit_offset_ms as f64 / 1000.0 + self.arrivals.offset_secs(j));
                j += 1;
            }
        }
        out
    }

    /// Display name of the point's arrival process: the schedule's own
    /// name, or `poisson@λ/s` for an open stream.
    pub fn arrivals_name(&self) -> String {
        match self.arrival_rate {
            Some(rate) => format!("poisson@{rate}/s"),
            None => self.arrivals.name(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_and_counts() {
        let s = Scenario::new("t")
            .axis_nodes([4usize, 6, 8])
            .axis_n_jobs([1usize, 2])
            .axis_estimators(EstimatorKind::ALL);
        assert_eq!(s.num_points(), 3 * 2 * 4);
        s.validate();
    }

    #[test]
    fn mix_axis_counts_as_one_axis() {
        let s = Scenario::new("t").axis_nodes([4usize, 6]).axis_mixes([
            WorkloadMix::single(JobKind::WordCount, GB, 2),
            WorkloadMix::new([
                MixEntry::new(JobKind::WordCount, GB, 1),
                MixEntry::new(JobKind::TeraSort, 2 * GB, 1),
                MixEntry::new(JobKind::Grep, GB, 2),
            ]),
        ]);
        assert_eq!(s.num_points(), 2 * 2);
        s.validate();
        assert_eq!(s.workload_values().len(), 2);
        assert_eq!(s.workload_values()[1].total_jobs(), 4);
    }

    #[test]
    fn grid_conveniences_cross_into_single_entry_mixes() {
        let s = Scenario::new("t")
            .axis_jobs([JobKind::WordCount, JobKind::Grep])
            .axis_input_bytes([GB, 2 * GB])
            .axis_n_jobs([1usize, 3]);
        let mixes = s.workload_values();
        assert_eq!(mixes.len(), 8, "jobs × input_bytes × n_jobs");
        // Rightmost (N) fastest, jobs outermost — the pre-mix order.
        assert_eq!(mixes[0].entries[0].job, JobKind::WordCount);
        assert_eq!(mixes[0].entries[0].count, 1);
        assert_eq!(mixes[1].entries[0].count, 3);
        assert_eq!(mixes[2].entries[0].input_bytes, 2 * GB);
        assert_eq!(mixes[4].entries[0].job, JobKind::Grep);
        assert!(mixes.iter().all(|m| m.entries.len() == 1));
    }

    #[test]
    #[should_panic(expected = "axis_jobs: the workload axis already holds explicit mixes")]
    fn grid_setters_reject_an_explicit_mix_axis() {
        let _ = Scenario::new("t")
            .axis_mixes([WorkloadMix::single(JobKind::WordCount, GB, 1)])
            .axis_jobs([JobKind::Grep]);
    }

    #[test]
    fn zip_counts_take_longest_axis() {
        let s = Scenario::new("t")
            .sweep_mode(SweepMode::Zip)
            .axis_nodes([4usize, 6, 8])
            .axis_input_bytes([GB, 2 * GB, 5 * GB]);
        assert_eq!(s.num_points(), 3);
        s.validate();
    }

    #[test]
    #[should_panic(expected = "zip axis")]
    fn zip_rejects_mismatched_lengths() {
        Scenario::new("t")
            .sweep_mode(SweepMode::Zip)
            .axis_nodes([4usize, 6, 8])
            .axis_n_jobs([1usize, 2])
            .validate();
    }

    #[test]
    #[should_panic(expected = "axis is empty")]
    fn empty_axis_rejected() {
        Scenario::new("t").axis_nodes(Vec::new()).validate();
    }

    #[test]
    fn num_points_saturates_instead_of_wrapping() {
        // 8 axes of 256 entries: 256^8 = 2^64 would wrap to 0 and slip
        // under any size guard; it must saturate instead.
        let axis: Vec<usize> = (1..=256).collect();
        let s = Scenario::new("huge")
            .axis_nodes(axis.clone())
            .axis_block_mb((1u64..=256).collect::<Vec<_>>())
            .axis_container_mb((1u32..=256).collect::<Vec<_>>())
            .axis_schedulers(vec![SchedulerPolicy::CapacityFifo; 256])
            .axis_jobs(vec![JobKind::WordCount; 256])
            .axis_input_bytes((1u64..=256).collect::<Vec<_>>())
            .axis_n_jobs(axis)
            .axis_estimators(vec![EstimatorKind::ForkJoin; 256]);
        assert_eq!(s.num_points(), usize::MAX);
    }

    #[test]
    fn check_reports_instead_of_panicking() {
        assert_eq!(Scenario::new("t").check(), Ok(()));
        let e = Scenario::new("t")
            .axis_jobs(Vec::new())
            .check()
            .unwrap_err();
        assert_eq!(e, "jobs axis is empty");
        let mut s = Scenario::new("t");
        s.backends = Backends {
            analytic: false,
            profile_calibration: false,
            simulator: None,
        };
        assert!(s.check().unwrap_err().contains("at least one backend"));
        assert!(Scenario::new("t")
            .axis_map_failure_prob([1.5])
            .check()
            .unwrap_err()
            .contains("outside [0, 1)"));
        assert!(Scenario::new("t")
            .axis_mixes(vec![WorkloadMix::new(Vec::new())])
            .check()
            .unwrap_err()
            .contains("no entries"));
    }

    #[test]
    fn check_validates_reduce_counts_centrally() {
        // A zero fixed reduce count is rejected for every job kind —
        // including the ones that used to silently clamp it.
        let e = Scenario::new("t")
            .reduce_policy(ReducePolicy::Fixed(0))
            .check()
            .unwrap_err();
        assert!(e.contains("must be positive"), "{e}");
        let e = Scenario::new("t")
            .axis_mixes([WorkloadMix::new([
                MixEntry::new(JobKind::Grep, GB, 1).with_reduces(ReducePolicy::Fixed(0))
            ])])
            .check()
            .unwrap_err();
        assert!(e.contains("grep@1024MB"), "names the entry: {e}");
        // A node count that can't be a u32 reduce count is rejected
        // instead of silently truncated.
        if usize::BITS > 32 {
            let e = Scenario::new("t")
                .axis_nodes([(u32::MAX as usize) + 1])
                .check()
                .unwrap_err();
            assert!(e.contains("per-node reduce count"), "{e}");
        }
        // Zero-count entries are rejected too.
        let e = Scenario::new("t")
            .axis_mixes([WorkloadMix::single(JobKind::WordCount, GB, 0)])
            .check()
            .unwrap_err();
        assert!(e.contains("count 0"), "{e}");
    }

    #[test]
    fn reduce_policy_resolution() {
        assert_eq!(ReducePolicy::PerNode.reduces(6), 6);
        assert_eq!(ReducePolicy::Fixed(3).reduces(6), 3);
        assert!(ReducePolicy::Fixed(0).try_reduces(6).is_err());
    }

    #[test]
    fn mix_naming_and_hashing_are_stable() {
        let mix = WorkloadMix::new([
            MixEntry::new(JobKind::WordCount, GB, 2),
            MixEntry::new(JobKind::TeraSort, 5 * GB, 1).with_reduces(ReducePolicy::Fixed(3)),
        ]);
        assert_eq!(mix.name(), "2xwordcount@1024MB + 1xterasort@5120MB:r3");
        assert_eq!(mix.total_jobs(), 3);
        let resolved = mix.resolve(4);
        assert_eq!(resolved.entries[0].reduces, 4);
        assert_eq!(resolved.entries[1].reduces, 3);
        assert_eq!(resolved.name(), "2xwordcount@1024MB+1xterasort@5120MB");
        assert_eq!(resolved.job_specs().len(), 3);

        let key = |m: &ResolvedMix| m.hash_into(KeyHasher::new()).finish();
        assert_eq!(key(&resolved), key(&mix.resolve(4)), "canonical form");
        assert_ne!(key(&resolved), key(&mix.resolve(6)), "reduces differ");
        // Entry order is semantic: a reordered mix is a different form.
        let swapped = WorkloadMix::new([mix.entries[1], mix.entries[0]]).resolve(4);
        assert_ne!(key(&resolved), key(&swapped));
        // And a policy-differing mix that resolves identically shares
        // the canonical form (evaluations would be identical).
        let fixed = WorkloadMix::new([
            MixEntry::new(JobKind::WordCount, GB, 2).with_reduces(ReducePolicy::Fixed(4)),
            mix.entries[1],
        ]);
        assert_eq!(key(&resolved), key(&fixed.resolve(4)));
    }

    #[test]
    fn grep_accepts_any_validated_reduce_count() {
        // The old Grep-only `.max(1)` clamp is gone: the kind uses the
        // validated count like every other preset.
        assert_eq!(JobKind::Grep.spec(GB, 3).reduces, 3);
        assert_eq!(JobKind::WordCount.spec(GB, 3).reduces, 3);
    }

    #[test]
    fn point_materializes_config_and_specs() {
        let p = EvalPoint {
            index: 0,
            nodes: 6,
            block_mb: 64,
            container_mb: 2048,
            scheduler: SchedulerPolicy::Fair,
            mix: WorkloadMix::new([
                MixEntry::new(JobKind::TeraSort, GB, 2),
                MixEntry::new(JobKind::Grep, GB, 1),
            ])
            .resolve(6),
            arrivals: ArrivalSchedule::Batch,
            arrival_rate: None,
            map_failure_prob: 0.1,
            slow_node_factor: 2.5,
            estimator: EstimatorKind::Tripathi,
            seed: 9,
        };
        let cfg = p.sim_config();
        assert_eq!(cfg.nodes, 6);
        assert_eq!(cfg.block_size, 64 * MB);
        assert_eq!(cfg.scheduler, SchedulerPolicy::Fair);
        assert_eq!(cfg.map_failure_prob, 0.1);
        assert_eq!(cfg.slow_node_factor, 2.5);
        assert_eq!(cfg.seed, 9);
        let specs = p.job_specs();
        assert_eq!(specs.len(), 3);
        assert_eq!(p.total_jobs(), 3);
        assert_eq!(specs[0].reduces, 6);
        assert_eq!(specs[2].reduces, 6, "grep takes the per-node count too");
        for s in &specs {
            s.validate();
        }
        assert_eq!(p.submit_offsets(), vec![0.0; 3], "batch is all-zero");
    }

    #[test]
    fn submit_offsets_layer_schedule_on_entry_offsets() {
        let mix = WorkloadMix::new([
            MixEntry::new(JobKind::WordCount, GB, 2).at_offset_ms(250),
            MixEntry::new(JobKind::Grep, GB, 1).at_offset_ms(4000),
        ]);
        let point = |arrivals: ArrivalSchedule| EvalPoint {
            index: 0,
            nodes: 4,
            block_mb: 128,
            container_mb: 1024,
            scheduler: SchedulerPolicy::CapacityFifo,
            mix: mix.resolve(4),
            arrivals,
            arrival_rate: None,
            map_failure_prob: 0.0,
            slow_node_factor: 1.0,
            estimator: EstimatorKind::ForkJoin,
            seed: 1,
        };
        // Batch: per-entry offsets only; copies of one entry share it.
        assert_eq!(
            point(ArrivalSchedule::Batch).submit_offsets(),
            vec![0.25, 0.25, 4.0]
        );
        // Staggered: job index × interval on top of the entry offsets.
        assert_eq!(
            point(ArrivalSchedule::Staggered { interval_ms: 1000 }).submit_offsets(),
            vec![0.25, 1.25, 6.0]
        );
        // Trace: explicit per-job offsets on top.
        assert_eq!(
            point(ArrivalSchedule::Trace {
                offsets_ms: vec![0, 500, 100]
            })
            .submit_offsets(),
            vec![0.25, 0.75, 4.1]
        );
    }

    #[test]
    fn arrival_schedule_names_hashes_and_checks() {
        assert_eq!(ArrivalSchedule::Batch.name(), "batch");
        assert_eq!(
            ArrivalSchedule::Staggered { interval_ms: 500 }.name(),
            "stagger@500ms"
        );
        let trace = ArrivalSchedule::Trace {
            offsets_ms: vec![0, 10, 20],
        };
        assert_eq!(trace.name(), "trace[3]");

        let key = |a: &ArrivalSchedule| a.hash_into(KeyHasher::new()).finish();
        assert_ne!(key(&ArrivalSchedule::Batch), key(&trace));
        // Batch and a zero stagger evaluate identically but are
        // distinct canonical forms.
        assert_ne!(
            key(&ArrivalSchedule::Batch),
            key(&ArrivalSchedule::Staggered { interval_ms: 0 })
        );
        assert_ne!(
            key(&trace),
            key(&ArrivalSchedule::Trace {
                offsets_ms: vec![0, 10, 30]
            })
        );

        // A trace schedule must cover every job of its mix.
        let mix = WorkloadMix::single(JobKind::WordCount, GB, 3);
        assert!(trace.check(&mix).is_ok());
        let short = ArrivalSchedule::Trace {
            offsets_ms: vec![0],
        };
        let e = short.check(&mix).unwrap_err();
        assert!(e.contains("1 offsets") && e.contains("3 jobs"), "{e}");
        assert!(ArrivalSchedule::Batch.check(&mix).is_ok());
    }

    #[test]
    fn arrivals_axis_participates_in_check_and_counts() {
        let s = Scenario::new("t").axis_n_jobs([2usize]).axis_arrivals([
            ArrivalSchedule::Batch,
            ArrivalSchedule::Staggered { interval_ms: 500 },
            ArrivalSchedule::Trace {
                offsets_ms: vec![0, 2000],
            },
        ]);
        assert_eq!(s.num_points(), 3);
        s.validate();

        // A trace that doesn't match a mix's job count is rejected
        // against every cartesian pairing.
        let e = Scenario::new("t")
            .axis_n_jobs([2usize, 3])
            .axis_arrivals([ArrivalSchedule::Trace {
                offsets_ms: vec![0, 2000],
            }])
            .check()
            .unwrap_err();
        assert!(e.contains("2 offsets"), "{e}");

        // In zip mode only position-wise pairings are validated.
        Scenario::new("t")
            .sweep_mode(SweepMode::Zip)
            .axis_n_jobs([2usize, 3])
            .axis_arrivals([
                ArrivalSchedule::Trace {
                    offsets_ms: vec![0, 2000],
                },
                ArrivalSchedule::Trace {
                    offsets_ms: vec![0, 1000, 2000],
                },
            ])
            .validate();
    }

    #[test]
    fn arrival_rate_axis_is_validated_and_counted() {
        let s = Scenario::new("t").axis_arrival_rate([0.01, 0.05, 0.1]);
        assert_eq!(s.num_points(), 3);
        s.validate();
        // Open and closed points can share a sweep.
        let s = Scenario::new("t").axis_arrival_rate_opt([None, Some(0.1)]);
        assert_eq!(s.num_points(), 2);
        s.validate();

        for bad in [0.0, -0.5, f64::NAN, f64::INFINITY] {
            let e = Scenario::new("t")
                .axis_arrival_rate([bad])
                .check()
                .unwrap_err();
            assert!(e.contains("arrival_rate"), "{bad} → {e}");
        }
        // A rate replaces the schedule; pairing it with a staggered or
        // trace schedule is rejected.
        let e = Scenario::new("t")
            .axis_arrival_rate([0.1])
            .axis_arrivals([ArrivalSchedule::Staggered { interval_ms: 500 }])
            .check()
            .unwrap_err();
        assert!(e.contains("batch arrivals"), "{e}");
    }

    #[test]
    fn poisson_offsets_are_deterministic_increasing_and_seeded() {
        let mk = |seed: u64, rate: Option<f64>| EvalPoint {
            index: 0,
            nodes: 4,
            block_mb: 128,
            container_mb: 1024,
            scheduler: SchedulerPolicy::CapacityFifo,
            mix: WorkloadMix::single(JobKind::WordCount, GB, 8).resolve(4),
            arrivals: ArrivalSchedule::Batch,
            arrival_rate: rate,
            map_failure_prob: 0.0,
            slow_node_factor: 1.0,
            estimator: EstimatorKind::ForkJoin,
            seed,
        };
        let a = mk(1, Some(0.1)).submit_offsets();
        assert_eq!(a.len(), 8);
        assert!(a.windows(2).all(|w| w[0] < w[1]), "strictly increasing");
        assert!(a[0] > 0.0 && a.iter().all(|t| t.is_finite()));
        assert_eq!(a, mk(1, Some(0.1)).submit_offsets(), "seed-deterministic");
        assert_ne!(a, mk(2, Some(0.1)).submit_offsets(), "seed-sensitive");
        // Mean interarrival ≈ 1/λ within a loose sampling band.
        let mean = a.last().unwrap() / 8.0;
        assert!(mean > 2.0 && mean < 50.0, "mean interarrival {mean}");
        // A faster stream compresses the same realization.
        let fast = mk(1, Some(1.0)).submit_offsets();
        assert!(fast.last().unwrap() < a.last().unwrap());
        // Closed points keep the schedule-driven (all-zero) offsets.
        assert_eq!(mk(1, None).submit_offsets(), vec![0.0; 8]);
        assert_eq!(mk(1, None).arrivals_name(), "batch");
        assert_eq!(mk(1, Some(0.1)).arrivals_name(), "poisson@0.1/s");
    }

    #[test]
    fn slow_node_factor_axis_is_validated() {
        let s = Scenario::new("t").axis_slow_node_factor([1.0, 2.0, 8.0]);
        assert_eq!(s.num_points(), 3);
        s.validate();
        for bad in [0.5, 0.0, -1.0, f64::NAN, f64::INFINITY] {
            let e = Scenario::new("t")
                .axis_slow_node_factor([bad])
                .check()
                .unwrap_err();
            assert!(e.contains("slow_node_factor"), "{bad} → {e}");
        }
    }

    #[test]
    fn entry_offsets_enter_names_and_canonical_form() {
        let plain = WorkloadMix::single(JobKind::WordCount, GB, 1);
        let offset = WorkloadMix::new([MixEntry::new(JobKind::WordCount, GB, 1).at_offset_ms(750)]);
        assert_eq!(offset.entries[0].name(), "1xwordcount@1024MB+750ms");
        assert_eq!(
            offset.entries[0].label(),
            "wordcount@1024MB",
            "label ignores offsets"
        );
        assert_eq!(offset.resolve(4).name(), "1xwordcount@1024MB+750ms");
        let key = |m: &WorkloadMix| m.resolve(4).hash_into(KeyHasher::new()).finish();
        assert_ne!(key(&plain), key(&offset), "offset is an evaluation input");
    }
}
