//! Declarative scenario specifications.
//!
//! A [`Scenario`] names a set of *axes* — cluster shape, workload shape,
//! and estimator — and how to combine them ([`SweepMode`]). Expansion
//! (module [`crate::expand`]) turns the spec into concrete
//! [`crate::EvalPoint`]s; it never runs anything itself, so specs are
//! cheap to build, inspect, and compare.

use mapreduce_sim::{JobSpec, SchedulerPolicy, SimConfig, GB, MB};

/// Which workload preset a point runs (see `mapreduce_sim::workload`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum JobKind {
    /// WordCount: CPU-heavy maps, shuffle ≈ input.
    WordCount,
    /// TeraSort-like: I/O-heavy on both sides.
    TeraSort,
    /// Grep-like: map-heavy, tiny intermediate data.
    Grep,
}

impl JobKind {
    /// Stable name used in reports and cache keys.
    pub fn name(&self) -> &'static str {
        match self {
            JobKind::WordCount => "wordcount",
            JobKind::TeraSort => "terasort",
            JobKind::Grep => "grep",
        }
    }

    /// Build the concrete job spec for this kind.
    pub fn spec(&self, input_bytes: u64, reduces: u32) -> JobSpec {
        match self {
            JobKind::WordCount => mapreduce_sim::workload::wordcount(input_bytes, reduces),
            JobKind::TeraSort => mapreduce_sim::workload::terasort(input_bytes, reduces),
            JobKind::Grep => {
                let mut s = mapreduce_sim::workload::grep(input_bytes);
                s.reduces = reduces.max(1);
                s
            }
        }
    }
}

/// How many reduce tasks a job gets at a given cluster size.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReducePolicy {
    /// One reduce per node — one reduce wave, the paper's sizing rule.
    PerNode,
    /// A fixed reduce count regardless of cluster size.
    Fixed(u32),
}

impl ReducePolicy {
    /// Reduce count for a cluster of `nodes` workers.
    pub fn reduces(&self, nodes: usize) -> u32 {
        match *self {
            ReducePolicy::PerNode => nodes as u32,
            ReducePolicy::Fixed(r) => r,
        }
    }
}

/// Which series a point contributes to the report.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EstimatorKind {
    /// Fork/join-based modified MVA (the paper's best method).
    ForkJoin,
    /// Tripathi-based estimate.
    Tripathi,
    /// ARIA bounds baseline.
    Aria,
    /// Herodotou static baseline.
    Herodotou,
}

impl EstimatorKind {
    /// Every estimator series, in paper order.
    pub const ALL: [EstimatorKind; 4] = [
        EstimatorKind::ForkJoin,
        EstimatorKind::Tripathi,
        EstimatorKind::Aria,
        EstimatorKind::Herodotou,
    ];

    /// Stable name used in reports and cache keys.
    pub fn name(&self) -> &'static str {
        match self {
            EstimatorKind::ForkJoin => "fork_join",
            EstimatorKind::Tripathi => "tripathi",
            EstimatorKind::Aria => "aria",
            EstimatorKind::Herodotou => "herodotou",
        }
    }
}

/// How the axes combine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SweepMode {
    /// Full cross product of every axis (the default).
    #[default]
    Cartesian,
    /// Lock-step: point `i` takes the `i`-th value of every axis;
    /// length-1 axes broadcast. All longer axes must agree on a length.
    Zip,
}

/// Which evaluation backends run for every point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Backends {
    /// Run the analytic model (fork/join + Tripathi + both baselines).
    pub analytic: bool,
    /// Calibrate the model from a single-job profiling run of the
    /// simulator (the paper's "job history"; §4.2.1). Only meaningful
    /// with `analytic`.
    pub profile_calibration: bool,
    /// Run the discrete-event simulator for ground truth: `Some(reps)`
    /// repeats each point `reps` times on consecutive seeds and reports
    /// the median (§5.1 methodology).
    pub simulator: Option<usize>,
}

impl Default for Backends {
    fn default() -> Self {
        Backends {
            analytic: true,
            profile_calibration: true,
            simulator: Some(5),
        }
    }
}

impl Backends {
    /// Analytic model only — the fast path for large sweeps.
    pub fn analytic_only() -> Backends {
        Backends {
            analytic: true,
            profile_calibration: false,
            simulator: None,
        }
    }
}

/// A declarative what-if sweep over cluster, workload, and estimator
/// axes.
///
/// Build one with [`Scenario::new`] and the `axis_*` setters, expand it
/// with [`crate::expand`], run it with [`crate::run_scenario`].
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Human-readable name; also part of every cache key's provenance
    /// (but *not* of the content hash — identical points in differently
    /// named scenarios share cache entries).
    pub name: String,
    /// How the axes combine.
    pub sweep: SweepMode,
    /// Cluster axis: worker node count.
    pub nodes: Vec<usize>,
    /// Cluster axis: HDFS block size (MiB).
    pub block_mb: Vec<u64>,
    /// Cluster axis: task container size (MiB of memory, 1 vcore).
    pub container_mb: Vec<u32>,
    /// Cluster axis: RM scheduler policy.
    pub schedulers: Vec<SchedulerPolicy>,
    /// Workload axis: job preset.
    pub jobs: Vec<JobKind>,
    /// Workload axis: input dataset size in bytes.
    pub input_bytes: Vec<u64>,
    /// Workload axis: multiprogramming level N (concurrent identical
    /// jobs).
    pub n_jobs: Vec<usize>,
    /// Estimator axis: which model series each point reports.
    pub estimators: Vec<EstimatorKind>,
    /// Reduce-count sizing rule (not an axis; applied per point).
    pub reduces: ReducePolicy,
    /// Backends evaluated per point.
    pub backends: Backends,
    /// Base RNG seed for simulator replications.
    pub seed: u64,
}

impl Scenario {
    /// A single-point scenario (4 nodes, 1 GB WordCount, N = 1,
    /// fork/join) to grow from with the `axis_*` setters.
    pub fn new(name: impl Into<String>) -> Scenario {
        Scenario {
            name: name.into(),
            sweep: SweepMode::Cartesian,
            nodes: vec![4],
            block_mb: vec![128],
            container_mb: vec![1024],
            schedulers: vec![SchedulerPolicy::CapacityFifo],
            jobs: vec![JobKind::WordCount],
            input_bytes: vec![GB],
            n_jobs: vec![1],
            estimators: vec![EstimatorKind::ForkJoin],
            reduces: ReducePolicy::PerNode,
            backends: Backends::default(),
            seed: 1,
        }
    }

    /// Set the node-count axis.
    pub fn axis_nodes(mut self, v: impl Into<Vec<usize>>) -> Self {
        self.nodes = v.into();
        self
    }

    /// Set the block-size axis (MiB).
    pub fn axis_block_mb(mut self, v: impl Into<Vec<u64>>) -> Self {
        self.block_mb = v.into();
        self
    }

    /// Set the container-size axis (MiB).
    pub fn axis_container_mb(mut self, v: impl Into<Vec<u32>>) -> Self {
        self.container_mb = v.into();
        self
    }

    /// Set the scheduler axis.
    pub fn axis_schedulers(mut self, v: impl Into<Vec<SchedulerPolicy>>) -> Self {
        self.schedulers = v.into();
        self
    }

    /// Set the job-preset axis.
    pub fn axis_jobs(mut self, v: impl Into<Vec<JobKind>>) -> Self {
        self.jobs = v.into();
        self
    }

    /// Set the input-size axis (bytes).
    pub fn axis_input_bytes(mut self, v: impl Into<Vec<u64>>) -> Self {
        self.input_bytes = v.into();
        self
    }

    /// Set the multiprogramming-level axis.
    pub fn axis_n_jobs(mut self, v: impl Into<Vec<usize>>) -> Self {
        self.n_jobs = v.into();
        self
    }

    /// Set the estimator axis.
    pub fn axis_estimators(mut self, v: impl Into<Vec<EstimatorKind>>) -> Self {
        self.estimators = v.into();
        self
    }

    /// Set the sweep mode.
    pub fn sweep_mode(mut self, m: SweepMode) -> Self {
        self.sweep = m;
        self
    }

    /// Set the reduce-count rule.
    pub fn reduce_policy(mut self, r: ReducePolicy) -> Self {
        self.reduces = r;
        self
    }

    /// Set the backends.
    pub fn with_backends(mut self, b: Backends) -> Self {
        self.backends = b;
        self
    }

    /// Set the base seed.
    pub fn with_seed(mut self, s: u64) -> Self {
        self.seed = s;
        self
    }

    /// Panic with a description if any axis is empty or a zip length
    /// mismatches.
    pub fn validate(&self) {
        if let Err(e) = self.check() {
            panic!("{e}");
        }
    }

    /// The non-panicking form of [`Scenario::validate`], for callers —
    /// like a serving layer — that must turn a bad spec into an error
    /// response rather than a crash.
    pub fn check(&self) -> Result<(), String> {
        for (name, empty) in [
            ("nodes", self.nodes.is_empty()),
            ("block_mb", self.block_mb.is_empty()),
            ("container_mb", self.container_mb.is_empty()),
            ("schedulers", self.schedulers.is_empty()),
            ("jobs", self.jobs.is_empty()),
            ("input_bytes", self.input_bytes.is_empty()),
            ("n_jobs", self.n_jobs.is_empty()),
            ("estimators", self.estimators.is_empty()),
        ] {
            if empty {
                return Err(format!("{name} axis is empty"));
            }
        }
        if !(self.backends.analytic || self.backends.simulator.is_some()) {
            return Err("at least one backend must be enabled".into());
        }
        if self.sweep == SweepMode::Zip {
            let lens = self.axis_lens();
            let max = lens.iter().copied().max().unwrap();
            for (name, len) in [
                ("nodes", lens[0]),
                ("block_mb", lens[1]),
                ("container_mb", lens[2]),
                ("schedulers", lens[3]),
                ("jobs", lens[4]),
                ("input_bytes", lens[5]),
                ("n_jobs", lens[6]),
                ("estimators", lens[7]),
            ] {
                if len != max && len != 1 {
                    return Err(format!(
                        "zip axis {name} has length {len}, expected {max} or 1"
                    ));
                }
            }
        }
        Ok(())
    }

    /// Lengths of all eight axes, in expansion order.
    pub fn axis_lens(&self) -> [usize; 8] {
        [
            self.nodes.len(),
            self.block_mb.len(),
            self.container_mb.len(),
            self.schedulers.len(),
            self.jobs.len(),
            self.input_bytes.len(),
            self.n_jobs.len(),
            self.estimators.len(),
        ]
    }

    /// Number of points the scenario expands to.
    /// Saturates at `usize::MAX` instead of wrapping, so a size guard
    /// (`num_points() > limit`) stays sound for absurd axis products —
    /// a service must bounce those, not expand them.
    pub fn num_points(&self) -> usize {
        match self.sweep {
            SweepMode::Cartesian => self
                .axis_lens()
                .iter()
                .try_fold(1usize, |acc, &len| acc.checked_mul(len))
                .unwrap_or(usize::MAX),
            SweepMode::Zip => self.axis_lens().into_iter().max().unwrap_or(0),
        }
    }
}

/// One fully concrete configuration produced by expanding a
/// [`Scenario`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EvalPoint {
    /// Position in the scenario's expansion order.
    pub index: usize,
    /// Worker node count.
    pub nodes: usize,
    /// HDFS block size, MiB.
    pub block_mb: u64,
    /// Task container memory, MiB.
    pub container_mb: u32,
    /// RM scheduler.
    pub scheduler: SchedulerPolicy,
    /// Workload preset.
    pub job: JobKind,
    /// Input dataset size, bytes.
    pub input_bytes: u64,
    /// Concurrent identical jobs.
    pub n_jobs: usize,
    /// Reported estimator series.
    pub estimator: EstimatorKind,
    /// Reduce tasks per job (already resolved from the policy).
    pub reduces: u32,
    /// Base simulator seed.
    pub seed: u64,
}

impl EvalPoint {
    /// The simulator/model cluster configuration for this point.
    pub fn sim_config(&self) -> SimConfig {
        let mut cfg = SimConfig::paper_testbed(self.nodes);
        cfg.block_size = self.block_mb * MB;
        cfg.container_size = yarn_sim::ResourceVector::new(self.container_mb.into(), 1);
        cfg.scheduler = self.scheduler;
        cfg.seed = self.seed;
        cfg
    }

    /// The job specification for this point.
    pub fn job_spec(&self) -> JobSpec {
        self.job.spec(self.input_bytes, self.reduces)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_and_counts() {
        let s = Scenario::new("t")
            .axis_nodes([4usize, 6, 8])
            .axis_n_jobs([1usize, 2])
            .axis_estimators(EstimatorKind::ALL);
        assert_eq!(s.num_points(), 3 * 2 * 4);
        s.validate();
    }

    #[test]
    fn zip_counts_take_longest_axis() {
        let s = Scenario::new("t")
            .sweep_mode(SweepMode::Zip)
            .axis_nodes([4usize, 6, 8])
            .axis_input_bytes([GB, 2 * GB, 5 * GB]);
        assert_eq!(s.num_points(), 3);
        s.validate();
    }

    #[test]
    #[should_panic(expected = "zip axis")]
    fn zip_rejects_mismatched_lengths() {
        Scenario::new("t")
            .sweep_mode(SweepMode::Zip)
            .axis_nodes([4usize, 6, 8])
            .axis_n_jobs([1usize, 2])
            .validate();
    }

    #[test]
    #[should_panic(expected = "axis is empty")]
    fn empty_axis_rejected() {
        Scenario::new("t").axis_nodes(Vec::new()).validate();
    }

    #[test]
    fn num_points_saturates_instead_of_wrapping() {
        // 8 axes of 256 entries: 256^8 = 2^64 would wrap to 0 and slip
        // under any size guard; it must saturate instead.
        let axis: Vec<usize> = (1..=256).collect();
        let s = Scenario::new("huge")
            .axis_nodes(axis.clone())
            .axis_block_mb((1u64..=256).collect::<Vec<_>>())
            .axis_container_mb((1u32..=256).collect::<Vec<_>>())
            .axis_schedulers(vec![SchedulerPolicy::CapacityFifo; 256])
            .axis_jobs(vec![JobKind::WordCount; 256])
            .axis_input_bytes((1u64..=256).collect::<Vec<_>>())
            .axis_n_jobs(axis)
            .axis_estimators(vec![EstimatorKind::ForkJoin; 256]);
        assert_eq!(s.num_points(), usize::MAX);
    }

    #[test]
    fn check_reports_instead_of_panicking() {
        assert_eq!(Scenario::new("t").check(), Ok(()));
        let e = Scenario::new("t")
            .axis_jobs(Vec::new())
            .check()
            .unwrap_err();
        assert_eq!(e, "jobs axis is empty");
        let mut s = Scenario::new("t");
        s.backends = Backends {
            analytic: false,
            profile_calibration: false,
            simulator: None,
        };
        assert!(s.check().unwrap_err().contains("at least one backend"));
    }

    #[test]
    fn reduce_policy_resolution() {
        assert_eq!(ReducePolicy::PerNode.reduces(6), 6);
        assert_eq!(ReducePolicy::Fixed(3).reduces(6), 3);
    }

    #[test]
    fn point_materializes_config_and_spec() {
        let p = EvalPoint {
            index: 0,
            nodes: 6,
            block_mb: 64,
            container_mb: 2048,
            scheduler: SchedulerPolicy::Fair,
            job: JobKind::TeraSort,
            input_bytes: GB,
            n_jobs: 2,
            estimator: EstimatorKind::Tripathi,
            reduces: 6,
            seed: 9,
        };
        let cfg = p.sim_config();
        assert_eq!(cfg.nodes, 6);
        assert_eq!(cfg.block_size, 64 * MB);
        assert_eq!(cfg.scheduler, SchedulerPolicy::Fair);
        assert_eq!(cfg.seed, 9);
        let spec = p.job_spec();
        assert_eq!(spec.reduces, 6);
        assert_eq!(spec.input_bytes, GB);
        spec.validate();
    }
}
