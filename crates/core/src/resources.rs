//! Resource-consumption estimation — the paper's stated future work
//! (§6: "we are planning to extend our model to be able to estimate the
//! amount of consumed resources for each task and the whole job").
//!
//! Consumption is expressed in **center-busy-seconds** (CPU core-seconds,
//! disk-busy seconds, NIC-busy seconds — the unloaded service demands,
//! which contention shifts in time but does not change) and in
//! **container-seconds** (contention-adjusted occupancy, the currency
//! YARN capacity planning budgets in).

use crate::input::{ModelInput, TaskClass};
use crate::solver::SolveResult;

/// Estimated consumption of one task of a class.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TaskResources {
    /// CPU core-seconds.
    pub cpu_seconds: f64,
    /// Disk-busy seconds.
    pub disk_seconds: f64,
    /// Network-busy seconds.
    pub network_seconds: f64,
    /// Container occupancy, contention-adjusted (seconds).
    pub container_seconds: f64,
}

/// Estimated consumption of a whole job.
#[derive(Debug, Clone, PartialEq)]
pub struct JobResources {
    /// Per-class task estimates `[map, shuffle-sort, merge]`.
    pub per_task: [TaskResources; 3],
    /// Totals over all tasks of the job.
    pub total: TaskResources,
    /// The AM's own container occupancy (the job's response time).
    pub am_container_seconds: f64,
}

/// Estimate one task's consumption: demands are unloaded busy times;
/// container occupancy is the contention-adjusted class duration from the
/// solved model.
pub fn task_resources(
    input: &ModelInput,
    solved: &SolveResult,
    job: usize,
    class: TaskClass,
) -> TaskResources {
    let j = &input.jobs[job];
    let c = class.index();
    TaskResources {
        cpu_seconds: j.demands[c][0],
        disk_seconds: j.demands[c][1],
        network_seconds: j.demands[c][2],
        container_seconds: solved.durations[job][c],
    }
}

/// Estimate a whole job's consumption.
pub fn job_resources(input: &ModelInput, solved: &SolveResult, job: usize) -> JobResources {
    assert!(job < input.jobs.len());
    let j = &input.jobs[job];
    let per_task = [
        task_resources(input, solved, job, TaskClass::Map),
        task_resources(input, solved, job, TaskClass::ShuffleSort),
        task_resources(input, solved, job, TaskClass::Merge),
    ];
    let counts = [
        j.num_maps as f64,
        j.num_reduces as f64,
        j.num_reduces as f64,
    ];
    let mut total = TaskResources {
        cpu_seconds: 0.0,
        disk_seconds: 0.0,
        network_seconds: 0.0,
        container_seconds: 0.0,
    };
    for (t, n) in per_task.iter().zip(counts) {
        total.cpu_seconds += t.cpu_seconds * n;
        total.disk_seconds += t.disk_seconds * n;
        total.network_seconds += t.network_seconds * n;
        total.container_seconds += t.container_seconds * n;
    }
    JobResources {
        per_task,
        total,
        am_container_seconds: solved.per_job_response[job],
    }
}

/// A capacity-planning style summary: share of the cluster's raw capacity
/// one run of the job consumes per second of its response time.
pub fn mean_cluster_share(input: &ModelInput, solved: &SolveResult, job: usize) -> f64 {
    let r = job_resources(input, solved, job);
    let response = solved.per_job_response[job].max(1e-9);
    let slots = input.cluster.total_containers() as f64;
    (r.total.container_seconds / response) / slots.max(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::input::{ClusterInputs, Estimator, JobClassInputs, ModelOptions};
    use crate::solver::solve;

    fn input() -> ModelInput {
        ModelInput {
            cluster: ClusterInputs {
                num_nodes: 4,
                cpu_per_node: 12,
                disk_per_node: 1,
                max_maps_per_node: 4,
                max_reduce_per_node: 4,
                reserved_containers: 1,
            },
            jobs: vec![JobClassInputs {
                num_maps: 8,
                num_reduces: 4,
                demands: [[30.0, 2.0, 0.2], [0.1, 0.5, 4.0], [1.0, 5.0, 1.0]],
                initial_response: [34.2, 4.6, 7.0],
                cv: [0.3, 0.5, 0.3],
                shuffle_per_map: 1.0,
                overhead: [2.0, 2.0, 0.0],
            }],
            options: ModelOptions {
                estimator: Estimator::ForkJoin,
                ..ModelOptions::default()
            },
        }
    }

    #[test]
    fn task_consumption_reflects_demands_and_contention() {
        let input = input();
        let solved = solve(&input);
        let map = task_resources(&input, &solved, 0, TaskClass::Map);
        assert_eq!(map.cpu_seconds, 30.0);
        assert_eq!(map.disk_seconds, 2.0);
        // Contention + overhead make occupancy exceed the raw demand sum.
        assert!(map.container_seconds >= 32.0, "{}", map.container_seconds);
    }

    #[test]
    fn job_totals_scale_with_task_counts() {
        let input = input();
        let solved = solve(&input);
        let r = job_resources(&input, &solved, 0);
        // 8 maps × 30 CPU-seconds each.
        assert!((r.total.cpu_seconds - (8.0 * 30.0 + 4.0 * 0.1 + 4.0 * 1.0)).abs() < 1e-9);
        assert!(r.total.container_seconds > 8.0 * 30.0);
        assert!(r.am_container_seconds >= solved.durations[0][0]);
    }

    #[test]
    fn cluster_share_is_a_fraction() {
        let input = input();
        let solved = solve(&input);
        let share = mean_cluster_share(&input, &solved, 0);
        assert!(share > 0.0 && share <= 1.0, "share = {share}");
    }
}
