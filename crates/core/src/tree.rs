//! Precedence trees (§4.2.2): binary trees over S (serial) and P
//! (parallel-and) operators whose leaves are timeline task segments.
//!
//! Construction follows the paper's phase rule: "each start or end of a
//! task indicates the start of a new phase. All tasks within the same
//! phase are executed in parallel, and tasks that belong to different
//! phases are executed sequentially." Scanning segments by start time, a
//! segment joins the current *wave* while it starts strictly before the
//! earliest end inside the wave; otherwise a new wave begins. Waves become
//! P-subtrees chained by S operators — which reproduces the paper's
//! running-example tree `S(P(m1,m2,m3), P(m4, r))` (Figure 7).
//!
//! "In order to reduce the maximal depth of precedence tree, we apply a
//! balancing procedure for each P-subtree" — `balance = true` builds each
//! wave as a balanced binary tree; `balance = false` (for the §5.2 depth
//! ablation) chains wave members left-deep.

use crate::timeline::{Segment, Timeline};

/// A binary precedence tree. Leaves index into the timeline's segment
/// vector.
#[derive(Debug, Clone, PartialEq)]
pub enum PrecTree {
    /// A task segment (index into [`Timeline::segments`]).
    Leaf(usize),
    /// Sequential composition.
    Serial(Box<PrecTree>, Box<PrecTree>),
    /// Parallel-and composition (both children must finish).
    Parallel(Box<PrecTree>, Box<PrecTree>),
}

impl PrecTree {
    /// Number of leaves.
    pub fn num_leaves(&self) -> usize {
        match self {
            PrecTree::Leaf(_) => 1,
            PrecTree::Serial(a, b) | PrecTree::Parallel(a, b) => a.num_leaves() + b.num_leaves(),
        }
    }

    /// Maximal depth (a single leaf has depth 1).
    pub fn depth(&self) -> usize {
        match self {
            PrecTree::Leaf(_) => 1,
            PrecTree::Serial(a, b) | PrecTree::Parallel(a, b) => 1 + a.depth().max(b.depth()),
        }
    }

    /// Leaf indices in left-to-right order.
    pub fn leaves(&self) -> Vec<usize> {
        let mut out = Vec::new();
        self.collect_leaves(&mut out);
        out
    }

    fn collect_leaves(&self, out: &mut Vec<usize>) {
        match self {
            PrecTree::Leaf(i) => out.push(*i),
            PrecTree::Serial(a, b) | PrecTree::Parallel(a, b) => {
                a.collect_leaves(out);
                b.collect_leaves(out);
            }
        }
    }

    /// Generic bottom-up evaluation: `leaf` maps a segment index to a
    /// value; `serial`/`parallel` combine child values.
    pub fn fold<T>(
        &self,
        leaf: &impl Fn(usize) -> T,
        serial: &impl Fn(T, T) -> T,
        parallel: &impl Fn(T, T) -> T,
    ) -> T {
        match self {
            PrecTree::Leaf(i) => leaf(*i),
            PrecTree::Serial(a, b) => serial(
                a.fold(leaf, serial, parallel),
                b.fold(leaf, serial, parallel),
            ),
            PrecTree::Parallel(a, b) => parallel(
                a.fold(leaf, serial, parallel),
                b.fold(leaf, serial, parallel),
            ),
        }
    }

    /// Pretty-print with segment labels from the timeline (for the
    /// Figure 7 style output of the examples).
    pub fn render(&self, tl: &Timeline) -> String {
        match self {
            PrecTree::Leaf(i) => {
                let s = &tl.segments[*i];
                let c = match s.class {
                    crate::input::TaskClass::Map => "m",
                    crate::input::TaskClass::ShuffleSort => "ss",
                    crate::input::TaskClass::Merge => "mg",
                };
                format!("{c}{}", s.index + 1)
            }
            PrecTree::Serial(a, b) => format!("S({}, {})", a.render(tl), b.render(tl)),
            PrecTree::Parallel(a, b) => format!("P({}, {})", a.render(tl), b.render(tl)),
        }
    }
}

/// Group segment indices into waves (see module docs). Segments must be
/// the indices to consider, in any order.
pub fn waves(tl: &Timeline, mut idx: Vec<usize>) -> Vec<Vec<usize>> {
    idx.sort_by(|&a, &b| {
        let (sa, sb) = (&tl.segments[a], &tl.segments[b]);
        sa.start
            .total_cmp(&sb.start)
            .then(sa.end.total_cmp(&sb.end))
            .then(a.cmp(&b))
    });
    let mut out: Vec<Vec<usize>> = Vec::new();
    let mut wave_min_end = f64::INFINITY;
    for i in idx {
        let s: &Segment = &tl.segments[i];
        if out.is_empty() || s.start >= wave_min_end - 1e-9 {
            out.push(vec![i]);
            wave_min_end = s.end;
        } else {
            out.last_mut().expect("non-empty").push(i);
            wave_min_end = wave_min_end.min(s.end);
        }
    }
    out
}

/// Build a P-subtree over one wave.
fn wave_tree(members: &[usize], balance: bool) -> PrecTree {
    assert!(!members.is_empty());
    if members.len() == 1 {
        return PrecTree::Leaf(members[0]);
    }
    if balance {
        let mid = members.len() / 2;
        PrecTree::Parallel(
            Box::new(wave_tree(&members[..mid], balance)),
            Box::new(wave_tree(&members[mid..], balance)),
        )
    } else {
        // Left-deep chain.
        let mut t = PrecTree::Leaf(members[0]);
        for &m in &members[1..] {
            t = PrecTree::Parallel(Box::new(t), Box::new(PrecTree::Leaf(m)));
        }
        t
    }
}

/// Build the precedence tree over a set of segments (`None` = all jobs,
/// `Some(j)` = only job `j`'s segments — Vianna's subset strategy for
/// per-job response times).
pub fn build_tree(tl: &Timeline, job: Option<u32>, balance: bool) -> Option<PrecTree> {
    let idx: Vec<usize> = tl
        .segments
        .iter()
        .enumerate()
        .filter(|(_, s)| job.is_none_or(|j| s.job == j))
        .map(|(i, _)| i)
        .collect();
    if idx.is_empty() {
        return None;
    }
    let ws = waves(tl, idx);
    let mut trees: Vec<PrecTree> = ws.iter().map(|w| wave_tree(w, balance)).collect();
    // Chain waves with S, right-associated.
    let mut t = trees.pop().expect("at least one wave");
    while let Some(prev) = trees.pop() {
        t = PrecTree::Serial(Box::new(prev), Box::new(t));
    }
    Some(t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::input::TaskClass;
    use crate::timeline::{build_timeline, ShuffleSpec, TimelineConfig, TimelineJob};

    fn running_example() -> Timeline {
        build_timeline(
            &TimelineConfig {
                capacities: vec![1; 3],
                slow_start: true,
            },
            &[TimelineJob {
                num_maps: 4,
                num_reduces: 1,
                map_duration: 10.0,
                merge_duration: 6.0,
                shuffle: ShuffleSpec::PerRemoteMap { sd: 2.0, base: 1.0 },
            }],
        )
    }

    #[test]
    fn running_example_waves() {
        let tl = running_example();
        let ws = waves(&tl, (0..tl.segments.len()).collect());
        // Wave 1: m1,m2,m3 at [0,10). Wave 2: m4 and the shuffle-sort at
        // [10,·). Wave 3: the merge.
        assert_eq!(ws.len(), 3);
        assert_eq!(ws[0].len(), 3);
        assert_eq!(ws[1].len(), 2);
        assert_eq!(ws[2].len(), 1);
        assert!(ws[0]
            .iter()
            .all(|&i| tl.segments[i].class == TaskClass::Map));
        assert_eq!(tl.segments[ws[2][0]].class, TaskClass::Merge);
    }

    #[test]
    fn running_example_tree_shape() {
        let tl = running_example();
        let t = build_tree(&tl, None, true).unwrap();
        assert_eq!(t.num_leaves(), 6); // 4 maps + shuffle-sort + merge
        let rendered = t.render(&tl);
        // Figure 7 shape: the first wave is a P-subtree of three maps, the
        // second pairs m4 with the reduce's shuffle-sort.
        assert!(rendered.starts_with("S("), "rendered: {rendered}");
        assert!(
            rendered.contains("P(m4, ss1)") || rendered.contains("P(ss1, m4)"),
            "wave 2 should pair m4 with the shuffle: {rendered}"
        );
    }

    #[test]
    fn balancing_reduces_depth() {
        // One wide wave: 64 concurrent maps.
        let tl = build_timeline(
            &TimelineConfig::homogeneous(64, 1),
            &[TimelineJob {
                num_maps: 64,
                num_reduces: 0,
                map_duration: 1.0,
                merge_duration: 0.0,
                shuffle: ShuffleSpec::Fixed(0.0),
            }],
        );
        let balanced = build_tree(&tl, None, true).unwrap();
        let chain = build_tree(&tl, None, false).unwrap();
        assert_eq!(balanced.num_leaves(), 64);
        assert_eq!(chain.num_leaves(), 64);
        assert_eq!(balanced.depth(), 7); // ⌈log2 64⌉ + 1
        assert_eq!(chain.depth(), 64);
        assert!(balanced.depth() < chain.depth());
    }

    #[test]
    fn per_job_subset() {
        let cfg = TimelineConfig::homogeneous(2, 1);
        let job = TimelineJob {
            num_maps: 2,
            num_reduces: 0,
            map_duration: 5.0,
            merge_duration: 0.0,
            shuffle: ShuffleSpec::Fixed(0.0),
        };
        let tl = build_timeline(&cfg, &[job.clone(), job]);
        let t0 = build_tree(&tl, Some(0), true).unwrap();
        let t1 = build_tree(&tl, Some(1), true).unwrap();
        assert_eq!(t0.num_leaves(), 2);
        assert_eq!(t1.num_leaves(), 2);
        assert!(build_tree(&tl, Some(7), true).is_none());
        for i in t1.leaves() {
            assert_eq!(tl.segments[i].job, 1);
        }
    }

    #[test]
    fn fold_computes_makespan_on_serial_chain() {
        // Sanity: fold with (sum, max) over a serial chain of known spans.
        let tl = build_timeline(
            &TimelineConfig::homogeneous(1, 1),
            &[TimelineJob {
                num_maps: 3,
                num_reduces: 0,
                map_duration: 2.0,
                merge_duration: 0.0,
                shuffle: ShuffleSpec::Fixed(0.0),
            }],
        );
        let t = build_tree(&tl, None, true).unwrap();
        let total = t.fold(
            &|i| tl.segments[i].duration(),
            &|a, b| a + b,
            &|a: f64, b: f64| a.max(b),
        );
        assert!((total - 6.0).abs() < 1e-12);
    }
}
