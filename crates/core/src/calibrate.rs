//! Calibration: derive [`ModelInput`] from a cluster configuration and a
//! job's dataflow statistics.
//!
//! This plays the role of the paper's *job profile* (§4.2.1): unloaded
//! service demands per class and center, plus initial response times from
//! the Herodotou bootstrap. Everything is computed from first principles
//! (bytes ÷ bandwidth, MB × CPU cost), so the model can run without ever
//! executing the simulator; measured CVs from a profiling run can refine
//! the defaults.

use crate::herodotou::{job_time, map_phases, reduce_phases, HerodotouParams};
use crate::input::{ClusterInputs, JobClassInputs, ModelInput, ModelOptions};
use mapreduce_sim::profile::MeasuredProfile;
use mapreduce_sim::{JobSpec, SimConfig, MB};

/// Calibration knobs that are not part of the cluster config.
#[derive(Debug, Clone)]
pub struct Calibration {
    /// Expected fraction of data-local map reads. Late binding plus
    /// replication keeps this high on small clusters.
    pub locality_fraction: f64,
    /// Per-class response-time CV floors `[map, shuffle-sort, merge]`.
    /// The Tripathi reference model \[4\] fits *response-time*
    /// distributions, whose variability under contention is close to the
    /// exponential family even when raw service times are stable; measured
    /// service CVs therefore only ever refine these floors upward.
    pub cv: [f64; 3],
    /// Reserve one container per concurrent job for its AM (mirrors
    /// `SimConfig::include_am_container`).
    pub reserve_am: bool,
}

impl Default for Calibration {
    fn default() -> Self {
        Calibration {
            locality_fraction: 0.95,
            cv: [0.40, 0.45, 0.40],
            reserve_am: true,
        }
    }
}

/// Map a `(SimConfig, JobSpec)` pair onto Herodotou's parameter set.
pub fn herodotou_params(cfg: &SimConfig, spec: &JobSpec, cal: &Calibration) -> HerodotouParams {
    let n = cfg.nodes as f64;
    let total_slots = cfg
        .total_containers()
        .saturating_sub(if cal.reserve_am { 1 } else { 0 });
    HerodotouParams {
        split_bytes: cfg.block_size.min(spec.input_bytes) as f64,
        num_maps: spec.num_maps(cfg.block_size),
        num_reduces: spec.reduces,
        map_slots: total_slots.max(1),
        reduce_slots: total_slots.max(1),
        read_bw: cfg.disk_bw,
        write_bw: cfg.disk_bw,
        network_bw: cfg.nic_bw,
        map_cpu_per_byte: spec.map_cpu_s_per_mb / MB as f64,
        reduce_cpu_per_byte: spec.reduce_cpu_s_per_mb / MB as f64,
        map_selectivity: spec.map_output_ratio,
        spill_factor: spec.spill_io_factor,
        map_merge_factor: 0.0,
        sort_factor: spec.sort_io_factor,
        reduce_selectivity: spec.reduce_output_ratio,
        remote_shuffle_fraction: (n - 1.0) / n,
    }
}

/// Unloaded per-class demands and initial responses for one job.
pub fn job_inputs(
    cfg: &SimConfig,
    spec: &JobSpec,
    cal: &Calibration,
    measured: Option<&MeasuredProfile>,
) -> JobClassInputs {
    let n = cfg.nodes as f64;
    let split = cfg.block_size.min(spec.input_bytes) as f64;
    let split_mb = split / MB as f64;
    let m = spec.num_maps(cfg.block_size);
    let r = spec.reduces;
    let p_local = cal.locality_fraction.clamp(0.0, 1.0);

    // Map class.
    let map_out = split * spec.map_output_ratio;
    let map_cpu = spec.map_cpu_s_per_mb * split_mb;
    let map_disk = (split * p_local + map_out * spec.spill_io_factor) / cfg.disk_bw;
    let map_net = split * (1.0 - p_local) / cfg.nic_bw;

    // Shuffle-sort class (per reduce).
    let (ss_cpu, ss_disk, ss_net, mg_cpu, mg_disk, mg_net);
    if r > 0 {
        let input = spec.total_shuffle_bytes() as f64 / r as f64;
        let remote_frac = (n - 1.0) / n;
        ss_cpu = 0.0;
        ss_net = input * remote_frac / cfg.nic_bw;
        ss_disk = input * (1.0 - remote_frac) / cfg.disk_bw;
        // Merge class.
        let out = input * spec.reduce_output_ratio;
        mg_cpu = spec.reduce_cpu_s_per_mb * input / MB as f64;
        mg_disk = (input * spec.sort_io_factor + out) / cfg.disk_bw;
        mg_net = out * (cfg.replication.saturating_sub(1)) as f64 / cfg.nic_bw;
    } else {
        ss_cpu = 0.0;
        ss_disk = 0.0;
        ss_net = 0.0;
        mg_cpu = 0.0;
        mg_disk = 0.0;
        mg_net = 0.0;
    }

    let demands = [
        [map_cpu, map_disk, map_net],
        [ss_cpu, ss_disk, ss_net],
        [mg_cpu, mg_disk, mg_net],
    ];
    // Container launch + half a heartbeat of allocation latency precede the
    // map body and the reduce (shuffle) body.
    let sched = cfg.container_launch_delay + 0.5 * cfg.heartbeat;
    let overhead = [sched, sched, 0.0];

    // Herodotou bootstrap for the initial responses (§4.2.1 approach 2).
    let hp = herodotou_params(cfg, spec, cal);
    let mp = map_phases(&hp);
    let rp = reduce_phases(&hp);
    let initial_response = [
        mp.total() + overhead[0],
        rp.shuffle_sort() + overhead[1],
        rp.merge_subtask() + overhead[2],
    ];

    // Response-time variability under contention exceeds raw service-time
    // variability (queueing adds variance), so measured service CVs act as
    // refinements above the calibration floor, never below it.
    let cv = match measured {
        Some(p) => [
            if p.map.count >= 2 {
                p.map.cv.max(cal.cv[0])
            } else {
                cal.cv[0]
            },
            if p.shuffle_sort.count >= 2 {
                p.shuffle_sort.cv.max(cal.cv[1])
            } else {
                cal.cv[1]
            },
            if p.merge.count >= 2 {
                p.merge.cv.max(cal.cv[2])
            } else {
                cal.cv[2]
            },
        ],
        None => cal.cv,
    };

    JobClassInputs {
        num_maps: m,
        num_reduces: r,
        demands,
        initial_response,
        cv,
        shuffle_per_map: map_out / cfg.nic_bw,
        overhead,
    }
}

/// One class of a heterogeneous workload mix: a job specification, how
/// many concurrent copies of it run, and optionally a measured profile
/// from a profiling run of *that* class (per-class calibration).
#[derive(Debug, Clone)]
pub struct MixClass {
    /// The job this class runs.
    pub spec: JobSpec,
    /// Concurrent copies of it in the mix (≥ 1).
    pub count: usize,
    /// Measured per-class statistics refining the calibration CVs.
    pub profile: Option<MeasuredProfile>,
}

/// Full model input for a heterogeneous mix of concurrent jobs: one
/// [`JobClassInputs`] per job instance, classes in entry order with
/// `count` consecutive copies each (the order [`crate::eval_mix`]
/// reports per-class results in).
pub fn mix_model_input(
    cfg: &SimConfig,
    classes: &[MixClass],
    options: ModelOptions,
    cal: &Calibration,
) -> ModelInput {
    assert!(!classes.is_empty(), "need at least one mix class");
    assert!(classes.iter().all(|c| c.count >= 1), "empty mix class");
    let total: usize = classes.iter().map(|c| c.count).sum();
    let per_node = cfg.containers_per_node();
    let cluster = ClusterInputs {
        num_nodes: cfg.nodes,
        cpu_per_node: cfg.cpu_cores.round().max(1.0) as u32,
        disk_per_node: 1,
        max_maps_per_node: per_node,
        max_reduce_per_node: per_node,
        reserved_containers: if cal.reserve_am && cfg.include_am_container {
            // Saturate rather than wrap: an absurd job total must not
            // silently reserve almost nothing.
            u32::try_from(total).unwrap_or(u32::MAX)
        } else {
            0
        },
    };
    let mut jobs = Vec::with_capacity(total);
    for c in classes {
        let job = job_inputs(cfg, &c.spec, cal, c.profile.as_ref());
        for _ in 0..c.count {
            jobs.push(job.clone());
        }
    }
    ModelInput {
        cluster,
        jobs,
        options,
    }
}

/// Full model input for `n_jobs` identical concurrent jobs — the
/// single-class convenience over [`mix_model_input`].
pub fn model_input(
    cfg: &SimConfig,
    spec: &JobSpec,
    n_jobs: usize,
    options: ModelOptions,
    cal: &Calibration,
    measured: Option<&MeasuredProfile>,
) -> ModelInput {
    assert!(n_jobs >= 1);
    mix_model_input(
        cfg,
        &[MixClass {
            spec: spec.clone(),
            count: n_jobs,
            profile: measured.cloned(),
        }],
        options,
        cal,
    )
}

/// The static Herodotou job-time estimate for the same configuration
/// (related-work baseline).
pub fn herodotou_estimate(cfg: &SimConfig, spec: &JobSpec, cal: &Calibration) -> f64 {
    job_time(&herodotou_params(cfg, spec, cal))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mapreduce_sim::workload::wordcount_1gb;

    #[test]
    fn demands_are_positive_and_sane() {
        let cfg = SimConfig::paper_testbed(4);
        let spec = wordcount_1gb(4);
        let j = job_inputs(&cfg, &spec, &Calibration::default(), None);
        assert_eq!(j.num_maps, 8);
        assert_eq!(j.num_reduces, 4);
        // Map CPU demand: 0.30 s/MB × 128 MB = 38.4 s.
        assert!((j.demands[0][0] - 38.4).abs() < 1e-9);
        // Map disk demand ≈ (128·0.95 + 128)/120 MB/s ≈ 2.08 s.
        assert!(j.demands[0][1] > 1.5 && j.demands[0][1] < 3.0);
        // Shuffle is network-dominated.
        assert!(j.demands[1][2] > j.demands[1][1]);
        // Initial responses are the Herodotou sums plus overheads.
        assert!(j.initial_response[0] > j.demands[0][0]);
        assert!(j.shuffle_per_map > 0.0);
    }

    #[test]
    fn map_only_zeroes_reduce_classes() {
        let cfg = SimConfig::paper_testbed(2);
        let mut spec = wordcount_1gb(0);
        spec.reduces = 0;
        let j = job_inputs(&cfg, &spec, &Calibration::default(), None);
        assert_eq!(j.demands[1], [0.0; 3]);
        assert_eq!(j.demands[2], [0.0; 3]);
    }

    #[test]
    fn model_input_reserves_am_containers() {
        let cfg = SimConfig::paper_testbed(4);
        let spec = wordcount_1gb(4);
        let inp = model_input(
            &cfg,
            &spec,
            3,
            ModelOptions::default(),
            &Calibration::default(),
            None,
        );
        assert_eq!(inp.jobs.len(), 3);
        assert_eq!(inp.cluster.reserved_containers, 3);
        inp.validate();
    }

    #[test]
    fn herodotou_baseline_positive() {
        let cfg = SimConfig::paper_testbed(4);
        let spec = wordcount_1gb(4);
        let t = herodotou_estimate(&cfg, &spec, &Calibration::default());
        assert!(t > 0.0);
    }
}
