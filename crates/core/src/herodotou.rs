//! Herodotou's static cost model (arXiv:1106.0940), at the granularity the
//! paper uses it: per-phase costs of map tasks (read, map, collect, spill,
//! merge) and reduce tasks (shuffle, merge, reduce, write).
//!
//! Two roles, both from the paper:
//!
//! 1. §4.2.1: bootstrap the modified-MVA loop — "obtaining [initial task
//!    response times] from the existing static cost models, for example,
//!    from Herodotou's cost models (we can assume that first all map tasks
//!    will be executed then reduce tasks)" — which "leads to faster
//!    algorithm convergence".
//! 2. §2.1: serve as the static related-work baseline: "the overall job
//!    execution time is simply the sum of the costs from all map and
//!    reduce phases", with fixed slot counts — the thing the paper shows
//!    is no longer applicable to YARN's continuous resources.

/// Platform and dataflow parameters of the static model.
#[derive(Debug, Clone)]
pub struct HerodotouParams {
    /// Bytes per input split.
    pub split_bytes: f64,
    /// Number of map tasks.
    pub num_maps: u32,
    /// Number of reduce tasks.
    pub num_reduces: u32,
    /// Map-side slots (in YARN terms: concurrent map containers).
    pub map_slots: u32,
    /// Reduce-side slots.
    pub reduce_slots: u32,
    /// HDFS/local read bandwidth, bytes/s.
    pub read_bw: f64,
    /// Local write bandwidth, bytes/s.
    pub write_bw: f64,
    /// Network bandwidth per transfer, bytes/s.
    pub network_bw: f64,
    /// Map function cost, CPU-seconds per byte.
    pub map_cpu_per_byte: f64,
    /// Reduce function cost, CPU-seconds per byte of reduce input.
    pub reduce_cpu_per_byte: f64,
    /// Map output bytes per input byte.
    pub map_selectivity: f64,
    /// Disk bytes written per map-output byte in collect/spill.
    pub spill_factor: f64,
    /// Extra on-disk merge passes on the map side (bytes moved per output
    /// byte beyond the first spill).
    pub map_merge_factor: f64,
    /// Disk bytes moved per shuffled byte in the reduce-side merge.
    pub sort_factor: f64,
    /// Job output bytes per reduce-input byte.
    pub reduce_selectivity: f64,
    /// Fraction of shuffle traffic that crosses the network (≈ (n−1)/n).
    pub remote_shuffle_fraction: f64,
}

/// Per-phase costs of one map task, seconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MapPhases {
    /// Read the split.
    pub read: f64,
    /// Map function CPU.
    pub map: f64,
    /// Serialize/partition into the sort buffer.
    pub collect: f64,
    /// Spill sorted runs to disk.
    pub spill: f64,
    /// Merge spill files.
    pub merge: f64,
}

impl MapPhases {
    /// Total map-task duration.
    pub fn total(&self) -> f64 {
        self.read + self.map + self.collect + self.spill + self.merge
    }
}

/// Per-phase costs of one reduce task, seconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReducePhases {
    /// Shuffle: fetch every map's partition.
    pub shuffle: f64,
    /// Merge/sort fetched runs.
    pub merge: f64,
    /// Reduce function CPU.
    pub reduce: f64,
    /// Write the output (first replica).
    pub write: f64,
}

impl ReducePhases {
    /// Total reduce-task duration.
    pub fn total(&self) -> f64 {
        self.shuffle + self.merge + self.reduce + self.write
    }

    /// The paper's shuffle-sort subtask (§4.1): shuffle + partial sorts.
    pub fn shuffle_sort(&self) -> f64 {
        self.shuffle
    }

    /// The paper's merge subtask: final sort + reduce function + write.
    pub fn merge_subtask(&self) -> f64 {
        self.merge + self.reduce + self.write
    }
}

/// Phase costs of one map task.
pub fn map_phases(p: &HerodotouParams) -> MapPhases {
    let out = p.split_bytes * p.map_selectivity;
    MapPhases {
        read: p.split_bytes / p.read_bw,
        map: p.split_bytes * p.map_cpu_per_byte,
        // Collect is CPU-side serialization; folded into a fraction of the
        // map function cost in this calibration (Herodotou keys it to
        // record counts we do not track separately).
        collect: 0.0,
        spill: out * p.spill_factor / p.write_bw,
        merge: out * p.map_merge_factor / p.write_bw,
    }
}

/// Phase costs of one reduce task.
pub fn reduce_phases(p: &HerodotouParams) -> ReducePhases {
    let r = p.num_reduces.max(1) as f64;
    let input = p.split_bytes * p.num_maps as f64 * p.map_selectivity / r;
    let remote = input * p.remote_shuffle_fraction;
    let local = input - remote;
    let out = input * p.reduce_selectivity;
    ReducePhases {
        shuffle: remote / p.network_bw + local / p.read_bw,
        merge: input * p.sort_factor / p.write_bw,
        reduce: input * p.reduce_cpu_per_byte,
        write: out / p.write_bw,
    }
}

/// The static job-completion estimate: maps run in
/// `⌈m / map_slots⌉` waves, then reduces in `⌈r / reduce_slots⌉` waves —
/// "we will give all available resources to the map tasks and then to the
/// reduce tasks" (§4.2.1).
pub fn job_time(p: &HerodotouParams) -> f64 {
    let map = map_phases(p).total();
    let map_waves = p.num_maps.div_ceil(p.map_slots.max(1)) as f64;
    let mut t = map_waves * map;
    if p.num_reduces > 0 {
        let red = reduce_phases(p).total();
        let red_waves = p.num_reduces.div_ceil(p.reduce_slots.max(1)) as f64;
        t += red_waves * red;
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> HerodotouParams {
        HerodotouParams {
            split_bytes: 128.0 * 1024.0 * 1024.0,
            num_maps: 8,
            num_reduces: 4,
            map_slots: 4,
            reduce_slots: 4,
            read_bw: 120.0e6,
            write_bw: 120.0e6,
            network_bw: 125.0e6,
            map_cpu_per_byte: 0.30 / (1024.0 * 1024.0),
            reduce_cpu_per_byte: 0.03 / (1024.0 * 1024.0),
            map_selectivity: 1.0,
            spill_factor: 1.0,
            map_merge_factor: 0.0,
            sort_factor: 2.0,
            reduce_selectivity: 0.25,
            remote_shuffle_fraction: 0.75,
        }
    }

    #[test]
    fn map_phase_costs() {
        let p = params();
        let m = map_phases(&p);
        // read: 128MB / 120MB/s ≈ 1.118s; map: 128 × 0.30 = 38.4s.
        assert!((m.read - 128.0 * 1024.0 * 1024.0 / 120.0e6).abs() < 1e-9);
        assert!((m.map - 38.4).abs() < 1e-9);
        assert!(m.spill > 0.0);
        assert!(m.total() > m.map);
    }

    #[test]
    fn reduce_phase_costs() {
        let p = params();
        let r = reduce_phases(&p);
        // Each reduce pulls 8×128/4 = 256 MB.
        assert!(r.shuffle > 0.0);
        assert!(r.merge > r.write); // sort moves 2× the bytes written
        assert!((r.shuffle_sort() + r.merge_subtask() - r.total()).abs() < 1e-12);
    }

    #[test]
    fn job_time_respects_waves() {
        let mut p = params();
        let t1 = job_time(&p);
        p.map_slots = 8; // one wave instead of two
        let t2 = job_time(&p);
        assert!(t2 < t1);
        let map = map_phases(&p).total();
        assert!((t1 - t2 - map).abs() < 1e-9, "exactly one map wave saved");
    }

    #[test]
    fn map_only_job() {
        let mut p = params();
        p.num_reduces = 0;
        let t = job_time(&p);
        assert!((t - 2.0 * map_phases(&p).total()).abs() < 1e-9);
    }
}
