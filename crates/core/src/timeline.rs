//! Timeline construction — the paper's Algorithm 1, extended to multiple
//! concurrent jobs.
//!
//! The timeline places every task of every job on a node, honoring YARN's
//! allocation rules as the paper models them (§4.2.2):
//!
//! * map containers are granted before reduce containers (priorities);
//! * each task goes to the node with the lowest occupancy rate —
//!   `min(TL)` in Algorithm 1 — implemented as the node whose container
//!   pool frees earliest (ties: fewer tasks, then lower id);
//! * with *slow start*, the shuffle of a reduce may begin at the end of
//!   the **first** map (`border := TL[min(TL)].et`); without it, at the
//!   end of the **last** map (`border := TL[max(TL)].et`);
//! * a reduce's shuffle duration grows by `m.sd/|R|` for every map placed
//!   on a *different* node (Algorithm 1 lines 14–18) — or is taken as a
//!   fixed class-level duration on later solver iterations, once the MVA
//!   has produced contention-adjusted class response times;
//! * jobs are served in FIFO order (single root Capacity-scheduler queue).
//!
//! Reduces are split into their **shuffle-sort** and **merge** segments so
//! the tree and the overlap factors see the paper's three task classes.

use crate::input::TaskClass;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// How a reduce's shuffle-sort duration is determined.
#[derive(Debug, Clone, Copy)]
pub enum ShuffleSpec {
    /// Algorithm 1 verbatim: `base + Σ_{m.an ≠ r.an} sd/|R|`.
    PerRemoteMap {
        /// `m.sd`: seconds to transfer one map's full output.
        sd: f64,
        /// Local (non-network) part of the shuffle-sort subtask.
        base: f64,
    },
    /// Fixed class-level duration (used once the MVA loop produces
    /// contention-adjusted response times).
    Fixed(f64),
}

/// Timeline-level description of one job.
#[derive(Debug, Clone)]
pub struct TimelineJob {
    /// Number of map tasks.
    pub num_maps: u32,
    /// Number of reduce tasks.
    pub num_reduces: u32,
    /// Duration of one map task.
    pub map_duration: f64,
    /// Duration of the merge subtask of one reduce.
    pub merge_duration: f64,
    /// Shuffle-sort duration rule.
    pub shuffle: ShuffleSpec,
}

/// Placement configuration.
#[derive(Debug, Clone)]
pub struct TimelineConfig {
    /// Container-pool size per node (index = node id). The paper's
    /// `T = n × max(pMaxMapsPerNode, pMaxReducePerNode)` total.
    pub capacities: Vec<u32>,
    /// Whether reduces slow-start at the first map's end.
    pub slow_start: bool,
}

impl TimelineConfig {
    /// Homogeneous pools: `nodes` nodes with `per_node` containers each.
    pub fn homogeneous(nodes: usize, per_node: u32) -> Self {
        assert!(nodes > 0 && per_node > 0);
        TimelineConfig {
            capacities: vec![per_node; nodes],
            slow_start: true,
        }
    }
}

/// One placed task segment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Segment {
    /// Owning job (workload index).
    pub job: u32,
    /// Task class of this segment.
    pub class: TaskClass,
    /// Task index within its class.
    pub index: u32,
    /// Node the segment runs on.
    pub node: u32,
    /// Start time.
    pub start: f64,
    /// End time.
    pub end: f64,
}

impl Segment {
    /// Segment duration.
    pub fn duration(&self) -> f64 {
        self.end - self.start
    }
}

/// The constructed timeline.
#[derive(Debug, Clone)]
pub struct Timeline {
    /// All task segments, in placement order.
    pub segments: Vec<Segment>,
    /// Number of nodes used for placement.
    pub num_nodes: usize,
}

impl Timeline {
    /// Latest end time over all segments (0 when empty).
    pub fn makespan(&self) -> f64 {
        self.segments.iter().map(|s| s.end).fold(0.0, f64::max)
    }

    /// Segments belonging to one job.
    pub fn job_segments(&self, job: u32) -> impl Iterator<Item = &Segment> {
        self.segments.iter().filter(move |s| s.job == job)
    }

    /// First start time of a job's tasks (FIFO queueing offset).
    pub fn job_start(&self, job: u32) -> f64 {
        self.job_segments(job)
            .map(|s| s.start)
            .fold(f64::INFINITY, f64::min)
    }

    /// Last end time of a job's tasks.
    pub fn job_end(&self, job: u32) -> f64 {
        self.job_segments(job).map(|s| s.end).fold(0.0, f64::max)
    }
}

/// One node's container pool: a min-heap of container-free times.
struct NodePool {
    id: u32,
    free_at: BinaryHeap<std::cmp::Reverse<OrdF64>>,
    assigned: u32,
}

/// Total-ordered f64 wrapper for the heap.
#[derive(Debug, Clone, Copy, PartialEq)]
struct OrdF64(f64);
impl Eq for OrdF64 {}
impl PartialOrd for OrdF64 {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for OrdF64 {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl NodePool {
    fn earliest(&self) -> f64 {
        self.free_at.peek().map(|r| r.0 .0).unwrap_or(f64::INFINITY)
    }

    fn take(&mut self) -> f64 {
        self.assigned += 1;
        self.free_at.pop().expect("pool is never empty").0 .0
    }

    fn give_back(&mut self, free_at: f64) {
        self.free_at.push(std::cmp::Reverse(OrdF64(free_at)));
    }
}

/// `min(TL)`: the node with the lowest occupancy rate — the one whose pool
/// frees earliest, ties broken by assignment count then id.
fn pick_node(pools: &[NodePool]) -> usize {
    pools
        .iter()
        .enumerate()
        .min_by(|(_, a), (_, b)| {
            a.earliest()
                .total_cmp(&b.earliest())
                .then(a.assigned.cmp(&b.assigned))
                .then(a.id.cmp(&b.id))
        })
        .map(|(i, _)| i)
        .expect("at least one node")
}

/// Build the timeline for `jobs` (in FIFO submission order) on `cfg`.
pub fn build_timeline(cfg: &TimelineConfig, jobs: &[TimelineJob]) -> Timeline {
    assert!(!cfg.capacities.is_empty());
    assert!(
        cfg.capacities.iter().all(|&c| c > 0),
        "empty container pool"
    );
    let mut pools: Vec<NodePool> = cfg
        .capacities
        .iter()
        .enumerate()
        .map(|(i, &cap)| NodePool {
            id: i as u32,
            free_at: (0..cap).map(|_| std::cmp::Reverse(OrdF64(0.0))).collect(),
            assigned: 0,
        })
        .collect();
    let mut segments = Vec::new();

    for (jid, job) in jobs.iter().enumerate() {
        let jid = jid as u32;
        // Lines 4–6: place maps on the least-occupied nodes.
        let mut map_nodes = Vec::with_capacity(job.num_maps as usize);
        let mut map_ends = Vec::with_capacity(job.num_maps as usize);
        for i in 0..job.num_maps {
            let n = pick_node(&pools);
            let st = pools[n].take();
            let et = st + job.map_duration;
            pools[n].give_back(et);
            segments.push(Segment {
                job: jid,
                class: TaskClass::Map,
                index: i,
                node: n as u32,
                start: st,
                end: et,
            });
            map_nodes.push(n as u32);
            map_ends.push(et);
        }

        // Lines 7–11: the slow-start border.
        let border = if job.num_maps == 0 {
            0.0
        } else if cfg.slow_start {
            map_ends.iter().copied().fold(f64::INFINITY, f64::min)
        } else {
            map_ends.iter().copied().fold(0.0, f64::max)
        };

        // Lines 12–21: place reduces.
        for i in 0..job.num_reduces {
            let n = pick_node(&pools);
            let free = pools[n].take();
            let st = free.max(border);
            let shuffle_d = match job.shuffle {
                ShuffleSpec::Fixed(d) => d,
                ShuffleSpec::PerRemoteMap { sd, base } => {
                    let remote = map_nodes.iter().filter(|&&mn| mn != n as u32).count();
                    base + remote as f64 * sd / job.num_reduces.max(1) as f64
                }
            };
            let ss_end = st + shuffle_d;
            let et = ss_end + job.merge_duration;
            pools[n].give_back(et);
            segments.push(Segment {
                job: jid,
                class: TaskClass::ShuffleSort,
                index: i,
                node: n as u32,
                start: st,
                end: ss_end,
            });
            segments.push(Segment {
                job: jid,
                class: TaskClass::Merge,
                index: i,
                node: n as u32,
                start: ss_end,
                end: et,
            });
        }
    }
    Timeline {
        segments,
        num_nodes: cfg.capacities.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's running example (§3.1, Figures 6–7): n = 3 nodes with
    /// one container each, m = 4 maps, r = 1 reduce.
    fn running_example(slow_start: bool) -> Timeline {
        let cfg = TimelineConfig {
            capacities: vec![1; 3],
            slow_start,
        };
        let jobs = [TimelineJob {
            num_maps: 4,
            num_reduces: 1,
            map_duration: 10.0,
            merge_duration: 6.0,
            shuffle: ShuffleSpec::PerRemoteMap { sd: 2.0, base: 1.0 },
        }];
        build_timeline(&cfg, &jobs)
    }

    #[test]
    fn running_example_layout() {
        let tl = running_example(true);
        let maps: Vec<&Segment> = tl
            .segments
            .iter()
            .filter(|s| s.class == TaskClass::Map)
            .collect();
        assert_eq!(maps.len(), 4);
        // Three maps start at 0 on distinct nodes; the fourth queues.
        assert_eq!(maps[0].start, 0.0);
        assert_eq!(maps[1].start, 0.0);
        assert_eq!(maps[2].start, 0.0);
        assert_eq!(maps[3].start, 10.0);
        let first_three_nodes: Vec<u32> = maps[..3].iter().map(|m| m.node).collect();
        let mut sorted = first_three_nodes.clone();
        sorted.sort();
        assert_eq!(sorted, vec![0, 1, 2]);

        // The reduce starts at the first map's end (slow start).
        let ss = tl
            .segments
            .iter()
            .find(|s| s.class == TaskClass::ShuffleSort)
            .unwrap();
        assert_eq!(ss.start, 10.0);
        // It shares no node with 3 of the 4 maps (m4 went to the reused
        // node, so exactly 3 maps are remote): 1 + 3·2/1 = 7.
        assert!((ss.duration() - 7.0).abs() < 1e-12);
        let merge = tl
            .segments
            .iter()
            .find(|s| s.class == TaskClass::Merge)
            .unwrap();
        assert_eq!(merge.start, ss.end);
        assert!((merge.duration() - 6.0).abs() < 1e-12);
        assert!((tl.makespan() - 23.0).abs() < 1e-12);
    }

    #[test]
    fn no_slow_start_delays_shuffle() {
        let tl = running_example(false);
        let ss = tl
            .segments
            .iter()
            .find(|s| s.class == TaskClass::ShuffleSort)
            .unwrap();
        // Border = end of the last map (m4 at t=20).
        assert_eq!(ss.start, 20.0);
    }

    #[test]
    fn containers_are_respected() {
        // 1 node × 2 containers, 6 maps of 5s → 3 waves: starts 0,0,5,5,10,10.
        let cfg = TimelineConfig {
            capacities: vec![2],
            slow_start: true,
        };
        let jobs = [TimelineJob {
            num_maps: 6,
            num_reduces: 0,
            map_duration: 5.0,
            merge_duration: 0.0,
            shuffle: ShuffleSpec::Fixed(0.0),
        }];
        let tl = build_timeline(&cfg, &jobs);
        let mut starts: Vec<f64> = tl.segments.iter().map(|s| s.start).collect();
        starts.sort_by(|a, b| a.total_cmp(b));
        assert_eq!(starts, vec![0.0, 0.0, 5.0, 5.0, 10.0, 10.0]);
        assert_eq!(tl.makespan(), 15.0);
    }

    #[test]
    fn fifo_places_second_job_after_first() {
        let cfg = TimelineConfig {
            capacities: vec![1; 2],
            slow_start: true,
        };
        let job = TimelineJob {
            num_maps: 2,
            num_reduces: 0,
            map_duration: 10.0,
            merge_duration: 0.0,
            shuffle: ShuffleSpec::Fixed(0.0),
        };
        let tl = build_timeline(&cfg, &[job.clone(), job]);
        assert_eq!(tl.job_start(0), 0.0);
        assert_eq!(tl.job_start(1), 10.0);
        assert_eq!(tl.job_end(1), 20.0);
    }

    #[test]
    fn fixed_shuffle_duration() {
        let cfg = TimelineConfig {
            capacities: vec![2; 2],
            slow_start: true,
        };
        let jobs = [TimelineJob {
            num_maps: 2,
            num_reduces: 2,
            map_duration: 4.0,
            merge_duration: 3.0,
            shuffle: ShuffleSpec::Fixed(5.0),
        }];
        let tl = build_timeline(&cfg, &jobs);
        for ss in tl
            .segments
            .iter()
            .filter(|s| s.class == TaskClass::ShuffleSort)
        {
            assert!((ss.duration() - 5.0).abs() < 1e-12);
            assert_eq!(ss.start, 4.0); // border = first map end
        }
        assert_eq!(tl.makespan(), 12.0);
    }

    #[test]
    fn map_only_multi_node_balance() {
        let cfg = TimelineConfig::homogeneous(4, 2);
        let jobs = [TimelineJob {
            num_maps: 8,
            num_reduces: 0,
            map_duration: 1.0,
            merge_duration: 0.0,
            shuffle: ShuffleSpec::Fixed(0.0),
        }];
        let tl = build_timeline(&cfg, &jobs);
        // 8 maps on 8 containers: all start at 0, spread 2 per node.
        assert!(tl.segments.iter().all(|s| s.start == 0.0));
        for n in 0..4u32 {
            assert_eq!(tl.segments.iter().filter(|s| s.node == n).count(), 2);
        }
    }
}
