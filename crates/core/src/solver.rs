//! The modified MVA algorithm — activities A1–A6 of Figure 4.
//!
//! ```text
//! A1  initialize residence times S_{i,k} and response times R_i
//! A2  build the precedence tree (via the timeline, Algorithm 1)
//! A3  estimate intra- (α) and inter-job (β) overlap factors
//! A4  compute queueing delays: overlap-adjusted approximate MVA
//! A5  estimate task & job response times (fork/join or Tripathi)
//! A6  convergence test on the job response time (ε = 1e-7); if it
//!     fails, return to A2 with the new response times
//! ```
//!
//! Classes are per `(job, task class)` so that the inter-job factors β
//! weight contention between different jobs, as the paper requires. The
//! per-job response time is estimated over the subtree of that job's tasks
//! (Vianna's subset strategy) plus its FIFO queueing offset from the
//! timeline.

use std::sync::OnceLock;

use crate::input::{Estimator, ModelInput, TaskClass};
use crate::overlap::{overlap_factors, population};
use crate::timeline::{build_timeline, ShuffleSpec, Timeline, TimelineConfig, TimelineJob};
use crate::tree::build_tree;
use queueing::distribution::ExpPoly;
use queueing::network::{ClosedNetwork, Station};
use queueing::{harmonic, overlap_mva};

/// Damping applied when feeding MVA responses back into the timeline
/// (0 = keep old, 1 = pure replacement). Plain replacement can oscillate
/// between two timelines; 0.5 is a standard safe choice.
const DAMPING: f64 = 0.5;

/// A2–A6 iterations executed by [`solve`], batched into one atomic add
/// per solve (the inner MVA reports its own iteration counter).
fn solver_iterations() -> &'static mr2_obs::Counter {
    static C: OnceLock<mr2_obs::Counter> = OnceLock::new();
    C.get_or_init(|| {
        mr2_obs::counter(
            "mr2_solver_iterations_total",
            "A2-A6 iterations executed by the modified-MVA solver.",
        )
    })
}

/// Solves whose ε-test never passed within the iteration budget.
fn solver_failures() -> &'static mr2_obs::Counter {
    static C: OnceLock<mr2_obs::Counter> = OnceLock::new();
    C.get_or_init(|| {
        mr2_obs::counter(
            "mr2_solver_convergence_failures_total",
            "Modified-MVA solves that exhausted the iteration budget before the epsilon test passed.",
        )
    })
}

/// Output of one solver run.
#[derive(Debug, Clone)]
pub struct SolveResult {
    /// Average job response time — the paper's headline metric.
    pub avg_response: f64,
    /// Per-job response times (submission → estimated completion).
    pub per_job_response: Vec<f64>,
    /// A2–A6 iterations executed.
    pub iterations: usize,
    /// Whether the ε-test passed within the iteration budget.
    pub converged: bool,
    /// Final contention-adjusted class durations `[job][class]`.
    pub durations: Vec<[f64; 3]>,
    /// Depth of each job's precedence tree in the final iteration.
    pub tree_depths: Vec<usize>,
    /// Final timeline makespan (all jobs).
    pub makespan: f64,
}

/// Build the closed network for the input: per node a CPU (multi-server),
/// a disk (multi-server) and a NIC station; one shared delay station
/// carries fixed scheduling overheads. Node-level demands are spread
/// uniformly across the symmetric nodes (visit ratio 1/n each).
fn build_network(input: &ModelInput) -> ClosedNetwork {
    let n = input.cluster.num_nodes;
    let mut stations = Vec::new();
    for node in 0..n {
        stations.push(Station::multi(
            &format!("cpu{node}"),
            input.cluster.cpu_per_node.max(1),
        ));
        stations.push(Station::multi(
            &format!("disk{node}"),
            input.cluster.disk_per_node.max(1),
        ));
        stations.push(Station::queueing(&format!("nic{node}")));
    }
    stations.push(Station::delay("overhead"));

    let mut classes = Vec::new();
    let mut demands = Vec::new();
    for (j, job) in input.jobs.iter().enumerate() {
        for class in TaskClass::ALL {
            classes.push(format!("j{j}#{:?}", class));
            let c = class.index();
            let mut row = Vec::with_capacity(stations.len());
            for _node in 0..n {
                row.push(job.demands[c][0] / n as f64); // cpu
                row.push(job.demands[c][1] / n as f64); // disk
                row.push(job.demands[c][2] / n as f64); // nic
            }
            row.push(job.overhead[c]);
            demands.push(row);
        }
    }
    ClosedNetwork::new(stations, classes, demands).expand_multiserver()
}

/// Container pools per node, with cluster-wide AM reservations spread
/// round-robin (a reserved container is unavailable for tasks).
fn capacities(input: &ModelInput) -> Vec<u32> {
    let n = input.cluster.num_nodes;
    let per_node = input
        .cluster
        .max_maps_per_node
        .max(input.cluster.max_reduce_per_node);
    let mut caps = vec![per_node; n];
    for i in 0..input.cluster.reserved_containers as usize {
        let idx = i % n;
        if caps[idx] > 1 {
            caps[idx] -= 1;
        }
    }
    caps
}

/// Evaluate a job's response with the fork/join estimator (§4.2.4):
/// each parallel phase (wave) is one fork-join block whose response is
/// `H₂ · max(T_i)` — "the biggest child response time plus possible
/// delay (multiplication by 3/2)" — and phases compose serially.
///
/// Interpretation notes (both required to land in the paper's reported
/// 11–13.5% band — see DESIGN.md §4):
///
/// 1. Varki's correction applies **once per fork-join block**, not
///    recursively at every internal P-node of the balanced binary
///    encoding — recursive application compounds to `1.5^⌈log₂ k⌉` for a
///    k-task wave.
/// 2. A class phase executed in several container waves is *one* block:
///    its synchronization barrier sits at the **last** wave of that class
///    (reduces wait for all maps; the job waits for all merges).
///    Intermediate waves are pipelined — containers free one by one — so
///    they contribute their plain duration. A wave therefore receives the
///    `H₂` factor only if it is the final wave of some class it contains.
fn eval_fork_join(job_waves: &[Vec<usize>], tl: &Timeline, durations: &[[f64; 3]]) -> f64 {
    let h2 = harmonic(2);
    // Last wave index per class (0 = map, 1 = shuffle-sort, 2 = merge).
    let mut last_wave = [usize::MAX; 3];
    for (wi, w) in job_waves.iter().enumerate() {
        for &i in w {
            last_wave[tl.segments[i].class.index()] = wi;
        }
    }
    job_waves
        .iter()
        .enumerate()
        .map(|(wi, w)| {
            let mut max = 0.0f64;
            let mut synchronizes = false;
            for &i in w {
                let s = &tl.segments[i];
                max = max.max(durations[s.job as usize][s.class.index()]);
                synchronizes |= last_wave[s.class.index()] == wi;
            }
            if synchronizes && w.len() > 1 {
                h2 * max
            } else {
                max
            }
        })
        .sum()
}

/// Evaluate with the Tripathi estimator over the same phase-block
/// structure as the fork/join path: each node's response-time
/// distribution is fitted to Erlang (CV ≤ 1) or hyperexponential (CV > 1)
/// by its mean and CV \[4, 9\]; the synchronization wave of each class is a
/// parallel block combined through exact pairwise `max` moments with
/// per-node re-fitting (§4.2.4), pipelined intermediate waves contribute
/// their plain duration, and blocks compose as sums.
///
/// The pairwise maxima compound at every P level, so an *unbalanced*
/// (left-deep) encoding of a wide wave inflates the estimate much more
/// than the balanced one — the depth/error effect §5.2 reports and the
/// reason the paper balances P-subtrees.
fn eval_tripathi(
    job_waves: &[Vec<usize>],
    tl: &Timeline,
    durations: &[[f64; 3]],
    cvs: &[[f64; 3]],
    balance: bool,
) -> f64 {
    // Last wave index per class.
    let mut last_wave = [usize::MAX; 3];
    for (wi, w) in job_waves.iter().enumerate() {
        for &i in w {
            last_wave[tl.segments[i].class.index()] = wi;
        }
    }
    let leaf = |i: usize| -> ExpPoly {
        let s = &tl.segments[i];
        let mean = durations[s.job as usize][s.class.index()].max(1e-9);
        let cv = cvs[s.job as usize][s.class.index()];
        ExpPoly::fit(mean, cv)
    };
    // Parallel-and combine of a wave's members.
    fn combine(members: &[usize], leaf: &dyn Fn(usize) -> ExpPoly, balance: bool) -> ExpPoly {
        if members.len() == 1 {
            return leaf(members[0]);
        }
        if balance {
            let mid = members.len() / 2;
            let a = combine(&members[..mid], leaf, balance);
            let b = combine(&members[mid..], leaf, balance);
            let (m1, m2) = a.max_moments(&b);
            ExpPoly::refit(m1.max(1e-12), m2)
        } else {
            let mut acc = leaf(members[0]);
            for &m in &members[1..] {
                let (m1, m2) = acc.max_moments(&leaf(m));
                acc = ExpPoly::refit(m1.max(1e-12), m2);
            }
            acc
        }
    }

    let mut total: Option<ExpPoly> = None;
    for (wi, w) in job_waves.iter().enumerate() {
        let synchronizes = w
            .iter()
            .any(|&i| last_wave[tl.segments[i].class.index()] == wi);
        let wave_dist = if synchronizes && w.len() > 1 {
            combine(w, &leaf, balance)
        } else {
            // Pipelined wave: plain duration of its longest member.
            let (mut mean, mut cv) = (0.0f64, 0.0f64);
            for &i in w {
                let s = &tl.segments[i];
                let d = durations[s.job as usize][s.class.index()];
                if d > mean {
                    mean = d;
                    cv = cvs[s.job as usize][s.class.index()];
                }
            }
            ExpPoly::fit(mean.max(1e-9), cv)
        };
        total = Some(match total {
            None => wave_dist,
            Some(t) => {
                let (m1, m2) = t.sum_moments(&wave_dist);
                ExpPoly::refit(m1.max(1e-12), m2)
            }
        });
    }
    total.map(|d| d.mean()).unwrap_or(0.0)
}

/// Run the modified MVA algorithm on `input`.
#[allow(clippy::needless_range_loop)] // (job, class) index pairs read clearer
pub fn solve(input: &ModelInput) -> SolveResult {
    let _timer = mr2_obs::span("model.solve");
    input.validate();
    let net = build_network(input);
    let caps = capacities(input);
    let n_jobs = input.jobs.len();

    // A1: initial per-class response times.
    let mut durations: Vec<[f64; 3]> = input.jobs.iter().map(|j| j.initial_response).collect();
    let cvs: Vec<[f64; 3]> = input.jobs.iter().map(|j| j.cv).collect();

    // Iteration-invariant state and scratch buffers, hoisted so the
    // A2–A6 loop re-fills storage instead of re-allocating it. The
    // overlap matrices start as all-ones — exactly the values the
    // factor-free configuration uses — and are only overwritten when
    // overlap factors are on.
    let cfg = TimelineConfig {
        capacities: caps,
        slow_start: input.options.slow_start,
    };
    let c_total = 3 * n_jobs;
    let mut tl_jobs: Vec<TimelineJob> = Vec::with_capacity(n_jobs);
    let mut pops = vec![0.0f64; c_total];
    let mut intra = vec![vec![1.0f64; c_total]; c_total];
    let mut inter = vec![vec![1.0f64; c_total]; c_total];
    let mut job_segments: Vec<Vec<usize>> = vec![Vec::new(); n_jobs];
    let mut per_job = vec![0.0f64; n_jobs];

    let mut prev_avg = f64::INFINITY;
    let mut avg = 0.0f64;
    let mut iterations = 0usize;
    let mut converged = false;
    let mut final_tl = None;

    for _iter in 0..input.options.max_iterations {
        iterations += 1;
        // A2: timeline from current durations (precedence trees are
        // pure reporting — they are built once, after convergence).
        tl_jobs.clear();
        tl_jobs.extend(input.jobs.iter().enumerate().map(|(j, job)| TimelineJob {
            num_maps: job.num_maps,
            num_reduces: job.num_reduces,
            map_duration: durations[j][0].max(1e-9),
            merge_duration: durations[j][2].max(0.0),
            shuffle: ShuffleSpec::Fixed(durations[j][1].max(0.0)),
        }));
        let tl = build_timeline(&cfg, &tl_jobs);

        // A3: overlap factors and populations.
        let f = overlap_factors(&tl, n_jobs as u32);
        let mut p = 0;
        for j in 0..n_jobs {
            for class in TaskClass::ALL {
                pops[p] = population(&tl, j as u32, class);
                p += 1;
            }
        }
        if input.options.use_overlap_factors {
            for a in 0..c_total {
                for b in 0..c_total {
                    let (ci, cj) = (a % 3, b % 3);
                    intra[a][b] = f.alpha[ci][cj];
                    inter[a][b] = f.beta[ci][cj];
                }
            }
        }

        // A4: overlap-adjusted MVA.
        let sol = overlap_mva(&net, &pops, &intra, &inter);

        // New contention-adjusted class durations (damped).
        for j in 0..n_jobs {
            for c in 0..3 {
                let new = sol.response[3 * j + c];
                if new > 0.0 {
                    durations[j][c] = (1.0 - DAMPING) * durations[j][c] + DAMPING * new;
                }
            }
        }

        // A5: per-job response estimates over the job's subtree. One
        // pass groups segment indices by job (ascending, matching the
        // former per-job filter).
        for js in job_segments.iter_mut() {
            js.clear();
        }
        for (i, s) in tl.segments.iter().enumerate() {
            job_segments[s.job as usize].push(i);
        }
        for j in 0..n_jobs {
            let ws = crate::tree::waves(&tl, std::mem::take(&mut job_segments[j]));
            let est = match input.options.estimator {
                Estimator::ForkJoin => eval_fork_join(&ws, &tl, &durations),
                Estimator::Tripathi => {
                    eval_tripathi(&ws, &tl, &durations, &cvs, input.options.balance_tree)
                }
            };
            per_job[j] = tl.job_start(j as u32) + est;
        }
        avg = per_job.iter().sum::<f64>() / n_jobs as f64;
        converged = (avg - prev_avg).abs() <= input.options.epsilon;
        final_tl = Some(tl);

        // A6: convergence test.
        if converged {
            break;
        }
        prev_avg = avg;
    }
    solver_iterations().add(iterations as u64);
    if !converged {
        solver_failures().inc();
    }
    let (tree_depths, makespan) = match &final_tl {
        Some(tl) => (
            (0..n_jobs)
                .map(|j| {
                    build_tree(tl, Some(j as u32), input.options.balance_tree)
                        .expect("every job has tasks")
                        .depth()
                })
                .collect(),
            tl.makespan(),
        ),
        None => (vec![0; n_jobs], 0.0),
    };
    SolveResult {
        avg_response: avg,
        per_job_response: per_job,
        iterations,
        converged,
        durations,
        tree_depths,
        makespan,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::input::{ClusterInputs, JobClassInputs, ModelOptions};

    fn job(m: u32, r: u32) -> JobClassInputs {
        JobClassInputs {
            num_maps: m,
            num_reduces: r,
            demands: [[30.0, 2.0, 0.2], [0.1, 0.5, 4.0], [1.0, 5.0, 1.0]],
            initial_response: [34.2, 4.6, 7.0],
            cv: [0.15, 0.4, 0.25],
            shuffle_per_map: 1.0,
            overhead: [2.0, 2.0, 0.0],
        }
    }

    fn cluster(nodes: usize) -> ClusterInputs {
        ClusterInputs {
            num_nodes: nodes,
            cpu_per_node: 12,
            disk_per_node: 1,
            max_maps_per_node: 4,
            max_reduce_per_node: 4,
            reserved_containers: 1,
        }
    }

    fn input(nodes: usize, jobs: usize, estimator: Estimator) -> ModelInput {
        ModelInput {
            cluster: cluster(nodes),
            jobs: (0..jobs).map(|_| job(8, 4)).collect(),
            options: ModelOptions {
                estimator,
                ..ModelOptions::default()
            },
        }
    }

    #[test]
    fn solver_converges_single_job() {
        let r = solve(&input(4, 1, Estimator::ForkJoin));
        assert!(
            r.converged,
            "did not converge in {} iterations",
            r.iterations
        );
        assert!(r.avg_response > 0.0);
        assert!(r.iterations < 200);
        // Response should at least cover one map wave plus the reduce tail.
        assert!(r.avg_response >= r.durations[0][0]);
    }

    #[test]
    fn tripathi_exceeds_fork_join() {
        // §5.2: both overestimate; Tripathi more than fork/join.
        let fj = solve(&input(4, 1, Estimator::ForkJoin));
        let tr = solve(&input(4, 1, Estimator::Tripathi));
        assert!(
            tr.avg_response > fj.avg_response * 0.7,
            "tripathi {:.1} vs fj {:.1}",
            tr.avg_response,
            fj.avg_response
        );
    }

    #[test]
    fn more_nodes_reduce_response() {
        let r4 = solve(&input(4, 1, Estimator::ForkJoin));
        let r8 = solve(&input(8, 1, Estimator::ForkJoin));
        assert!(
            r8.avg_response < r4.avg_response,
            "r4={:.1} r8={:.1}",
            r4.avg_response,
            r8.avg_response
        );
    }

    #[test]
    fn more_jobs_increase_response() {
        let r1 = solve(&input(4, 1, Estimator::ForkJoin));
        let r4 = solve(&input(4, 4, Estimator::ForkJoin));
        assert!(
            r4.avg_response > 1.3 * r1.avg_response,
            "1 job {:.1}, 4 jobs {:.1}",
            r1.avg_response,
            r4.avg_response
        );
        assert_eq!(r4.per_job_response.len(), 4);
        // FIFO: later jobs respond no faster than the first, and the last
        // job waits for the queue ahead of it.
        assert!(r4.per_job_response[3] >= r4.per_job_response[0]);
        assert!(r4.per_job_response[3] > 2.0 * r1.avg_response);
    }

    #[test]
    fn balancing_reduces_tree_depth() {
        let mut with = input(4, 1, Estimator::ForkJoin);
        with.jobs[0].num_maps = 64;
        let mut without = with.clone();
        without.options.balance_tree = false;
        let a = solve(&with);
        let b = solve(&without);
        assert!(a.tree_depths[0] < b.tree_depths[0]);
        // Unbalanced trees inflate the fork/join estimate (more nested
        // 1.5× factors) — the §5.2 depth/error hypothesis.
        assert!(b.avg_response >= a.avg_response);
    }

    #[test]
    fn map_only_job_solves() {
        let mut inp = input(2, 1, Estimator::ForkJoin);
        inp.jobs[0].num_reduces = 0;
        let r = solve(&inp);
        assert!(r.converged);
        assert!(r.avg_response > 0.0);
    }

    #[test]
    fn slow_start_shortens_the_timeline() {
        let mut on = input(4, 1, Estimator::ForkJoin);
        on.jobs[0].num_maps = 16;
        let mut off = on.clone();
        off.options.slow_start = false;
        let a = solve(&on);
        let b = solve(&off);
        // Starting the shuffle at the first map's end can only pull the
        // reduces (and thus the makespan) earlier.
        assert!(
            a.makespan <= b.makespan + 1e-6,
            "slow start should shorten the timeline: on={:.1} off={:.1}",
            a.makespan,
            b.makespan
        );
    }
}
