//! Estimation-error accounting, matching how §5.2 reports accuracy.

/// Signed relative error `(estimate − measured) / measured`; positive
/// values are overestimates (the paper: "with both approaches we
/// overestimate the execution time").
pub fn relative_error(estimate: f64, measured: f64) -> f64 {
    assert!(measured > 0.0, "measured time must be positive");
    (estimate - measured) / measured
}

/// Absolute relative error, the paper's reported percentage.
pub fn abs_relative_error(estimate: f64, measured: f64) -> f64 {
    relative_error(estimate, measured).abs()
}

/// Min/max band of absolute relative errors over a set of experiments
/// (the paper reports e.g. "error between 11% and 13.5%").
#[derive(Debug, Clone, Copy)]
pub struct ErrorBand {
    /// Smallest absolute relative error seen.
    pub min: f64,
    /// Largest absolute relative error seen.
    pub max: f64,
    /// Mean absolute relative error.
    pub mean: f64,
    /// Number of points.
    pub count: u32,
}

impl ErrorBand {
    /// Band over `(estimate, measured)` pairs. Panics on an empty slice.
    pub fn over(pairs: &[(f64, f64)]) -> ErrorBand {
        assert!(!pairs.is_empty());
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        let mut sum = 0.0;
        for &(e, m) in pairs {
            let err = abs_relative_error(e, m);
            min = min.min(err);
            max = max.max(err);
            sum += err;
        }
        ErrorBand {
            min,
            max,
            mean: sum / pairs.len() as f64,
            count: pairs.len() as u32,
        }
    }

    /// Render as the paper's "x% – y%" form.
    pub fn as_percent_range(&self) -> String {
        format!("{:.1}% – {:.1}%", self.min * 100.0, self.max * 100.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn signed_and_absolute() {
        assert!((relative_error(115.0, 100.0) - 0.15).abs() < 1e-12);
        assert!((relative_error(85.0, 100.0) + 0.15).abs() < 1e-12);
        assert!((abs_relative_error(85.0, 100.0) - 0.15).abs() < 1e-12);
    }

    #[test]
    fn band_over_pairs() {
        let band = ErrorBand::over(&[(110.0, 100.0), (120.0, 100.0), (95.0, 100.0)]);
        assert!((band.min - 0.05).abs() < 1e-12);
        assert!((band.max - 0.20).abs() < 1e-12);
        assert_eq!(band.count, 3);
        assert_eq!(band.as_percent_range(), "5.0% – 20.0%");
    }

    #[test]
    #[should_panic(expected = "measured time must be positive")]
    fn zero_measured_rejected() {
        relative_error(1.0, 0.0);
    }
}
