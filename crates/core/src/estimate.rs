//! High-level estimation API: one call from `(cluster, job, N)` to the
//! paper's model estimates plus the related-work baselines.

use crate::aria::{aria_bounds, AriaProfile, StageStats};
use crate::calibrate::{herodotou_estimate, model_input, Calibration};
use crate::input::{Estimator, ModelOptions};
use crate::solver::{solve, SolveResult};
use mapreduce_sim::profile::MeasuredProfile;
use mapreduce_sim::{JobSpec, SimConfig};

/// Estimates of the average job response time for one workload point.
#[derive(Debug, Clone)]
pub struct WorkloadEstimate {
    /// Fork/join-based modified-MVA estimate (the paper's best method).
    pub fork_join: f64,
    /// Tripathi-based estimate.
    pub tripathi: f64,
    /// ARIA `T_avg` baseline (fixed-slot makespan bounds).
    pub aria: f64,
    /// Herodotou static-sum baseline.
    pub herodotou: f64,
    /// Full fork/join solver output.
    pub fork_join_detail: SolveResult,
    /// Full Tripathi solver output.
    pub tripathi_detail: SolveResult,
}

/// Run both estimators and both baselines for `n_jobs` identical jobs.
///
/// `measured` optionally supplies duration CVs from a profiling run
/// (§4.2.1's "sample techniques"); without it the calibration defaults are
/// used, and the initial responses come from the Herodotou bootstrap
/// either way.
pub fn estimate_workload(
    cfg: &SimConfig,
    spec: &JobSpec,
    n_jobs: usize,
    options: &ModelOptions,
    cal: &Calibration,
    measured: Option<&MeasuredProfile>,
) -> WorkloadEstimate {
    let mut fj_opts = options.clone();
    fj_opts.estimator = Estimator::ForkJoin;
    let mut tr_opts = options.clone();
    tr_opts.estimator = Estimator::Tripathi;

    let fj_input = model_input(cfg, spec, n_jobs, fj_opts, cal, measured);
    let tr_input = model_input(cfg, spec, n_jobs, tr_opts, cal, measured);
    let fj = solve(&fj_input);
    let tr = solve(&tr_input);

    // ARIA baseline from the same initial statistics. The bounds model has
    // no notion of concurrent jobs; following its own usage we scale the
    // slot pool by 1/N (each of N identical jobs effectively receives an
    // equal share under FIFO averaging).
    let job = &fj_input.jobs[0];
    let slots_total = fj_input
        .cluster
        .total_containers()
        .saturating_sub(fj_input.cluster.reserved_containers)
        .max(1);
    let slots = (slots_total as f64 / n_jobs as f64).max(1.0) as u32;
    let mk = |mean: f64, cv: f64| StageStats {
        avg: mean,
        max: mean * (1.0 + 2.0 * cv),
    };
    let profile = AriaProfile {
        num_maps: job.num_maps,
        num_reduces: job.num_reduces,
        map: mk(job.initial_response[0], job.cv[0]),
        shuffle_first: mk(job.initial_response[1], job.cv[1]),
        shuffle_typical: mk(job.initial_response[1], job.cv[1]),
        reduce: mk(job.initial_response[2], job.cv[2]),
    };
    let aria = aria_bounds(&profile, slots, slots).avg();

    let herodotou = herodotou_estimate(cfg, spec, cal) * n_jobs as f64;

    WorkloadEstimate {
        fork_join: fj.avg_response,
        tripathi: tr.avg_response,
        aria,
        herodotou,
        fork_join_detail: fj,
        tripathi_detail: tr,
    }
}

/// Schema version of the analytic model's inputs and outputs.
///
/// Bump whenever a change makes previously computed [`ModelPoint`]s
/// incomparable with fresh ones — a new estimator, a changed calibration
/// default, a different record layout. Cache layers (crate
/// `mr2-scenario`) bake this into their content hashes, so persisted
/// results from an older model silently miss instead of serving stale
/// numbers.
pub const MODEL_SCHEMA_VERSION: u32 = 1;

/// The analytic estimates of one configuration point — the narrow entry
/// result batch evaluators (crate `mr2-scenario`) consume. A flat,
/// comparison-ready subset of [`WorkloadEstimate`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModelPoint {
    /// Fork/join estimate.
    pub fork_join: f64,
    /// Tripathi estimate.
    pub tripathi: f64,
    /// ARIA baseline.
    pub aria: f64,
    /// Herodotou static baseline.
    pub herodotou: f64,
}

impl ModelPoint {
    /// Flat-record length of [`ModelPoint::to_record`].
    pub const RECORD_LEN: usize = 4;

    /// The stable serialized form: a flat `f64` record with a fixed
    /// field order, the unit cache layers and services store and ship.
    pub fn to_record(&self) -> Vec<f64> {
        vec![self.fork_join, self.tripathi, self.aria, self.herodotou]
    }

    /// Decode a record written by [`ModelPoint::to_record`]; `None` if
    /// the length doesn't match (a corrupt or foreign record).
    pub fn from_record(rec: &[f64]) -> Option<ModelPoint> {
        match rec {
            &[fork_join, tripathi, aria, herodotou] => Some(ModelPoint {
                fork_join,
                tripathi,
                aria,
                herodotou,
            }),
            _ => None,
        }
    }
}

/// Narrow batch-evaluation entry point: both estimators and both
/// baselines for one `(cfg, spec, n_jobs)` point. Deterministic in its
/// inputs, which is what makes results content-addressable.
pub fn eval_point(
    cfg: &SimConfig,
    spec: &JobSpec,
    n_jobs: usize,
    options: &ModelOptions,
    cal: &Calibration,
    measured: Option<&MeasuredProfile>,
) -> ModelPoint {
    let e = estimate_workload(cfg, spec, n_jobs, options, cal, measured);
    ModelPoint {
        fork_join: e.fork_join,
        tripathi: e.tripathi,
        aria: e.aria,
        herodotou: e.herodotou,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mapreduce_sim::workload::wordcount_1gb;

    #[test]
    fn all_estimates_positive_and_finite() {
        let cfg = SimConfig::paper_testbed(4);
        let spec = wordcount_1gb(4);
        let e = estimate_workload(
            &cfg,
            &spec,
            1,
            &ModelOptions::default(),
            &Calibration::default(),
            None,
        );
        for (name, v) in [
            ("fork_join", e.fork_join),
            ("tripathi", e.tripathi),
            ("aria", e.aria),
            ("herodotou", e.herodotou),
        ] {
            assert!(v.is_finite() && v > 0.0, "{name} = {v}");
        }
        assert!(e.fork_join_detail.converged);
        assert!(e.tripathi_detail.converged);
    }

    #[test]
    fn eval_point_matches_estimate_workload() {
        let cfg = SimConfig::paper_testbed(4);
        let spec = wordcount_1gb(4);
        let opts = ModelOptions::default();
        let cal = Calibration::default();
        let e = estimate_workload(&cfg, &spec, 2, &opts, &cal, None);
        let p = eval_point(&cfg, &spec, 2, &opts, &cal, None);
        assert_eq!(p.fork_join.to_bits(), e.fork_join.to_bits());
        assert_eq!(p.tripathi.to_bits(), e.tripathi.to_bits());
        assert_eq!(p.aria.to_bits(), e.aria.to_bits());
        assert_eq!(p.herodotou.to_bits(), e.herodotou.to_bits());
    }

    #[test]
    fn model_point_record_roundtrip_is_bit_exact() {
        let p = ModelPoint {
            fork_join: 0.1 + 0.2,
            tripathi: -0.0,
            aria: f64::from_bits(0x7ff0000000000001),
            herodotou: 1e300,
        };
        let rec = p.to_record();
        assert_eq!(rec.len(), ModelPoint::RECORD_LEN);
        let q = ModelPoint::from_record(&rec).unwrap();
        assert_eq!(q.fork_join.to_bits(), p.fork_join.to_bits());
        assert_eq!(q.tripathi.to_bits(), p.tripathi.to_bits());
        assert_eq!(q.aria.to_bits(), p.aria.to_bits());
        assert_eq!(q.herodotou.to_bits(), p.herodotou.to_bits());
        assert_eq!(ModelPoint::from_record(&rec[..3]), None);
        assert_eq!(ModelPoint::from_record(&[0.0; 5]), None);
    }

    #[test]
    fn estimates_scale_with_job_count() {
        let cfg = SimConfig::paper_testbed(4);
        let spec = wordcount_1gb(4);
        let one = estimate_workload(
            &cfg,
            &spec,
            1,
            &ModelOptions::default(),
            &Calibration::default(),
            None,
        );
        let four = estimate_workload(
            &cfg,
            &spec,
            4,
            &ModelOptions::default(),
            &Calibration::default(),
            None,
        );
        assert!(four.fork_join > one.fork_join);
        assert!(four.tripathi > one.tripathi);
    }
}
