//! High-level estimation API: one call from `(cluster, job, N)` to the
//! paper's model estimates plus the related-work baselines.

use crate::aria::{aria_bounds, AriaProfile, StageStats};
use crate::calibrate::{herodotou_estimate, mix_model_input, Calibration, MixClass};
use crate::input::{Estimator, ModelOptions};
use crate::memo::cached_solve;
use crate::solver::SolveResult;
use mapreduce_sim::profile::MeasuredProfile;
use mapreduce_sim::{JobSpec, SimConfig};

/// Estimates of the average job response time for one workload point.
#[derive(Debug, Clone)]
pub struct WorkloadEstimate {
    /// Fork/join-based modified-MVA estimate (the paper's best method).
    pub fork_join: f64,
    /// Tripathi-based estimate.
    pub tripathi: f64,
    /// ARIA `T_avg` baseline (fixed-slot makespan bounds).
    pub aria: f64,
    /// Herodotou static-sum baseline.
    pub herodotou: f64,
    /// Full fork/join solver output.
    pub fork_join_detail: SolveResult,
    /// Full Tripathi solver output.
    pub tripathi_detail: SolveResult,
}

/// All four estimate series of one job class (or, aggregated, of the
/// whole mix).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClassPoint {
    /// Fork/join estimate.
    pub fork_join: f64,
    /// Tripathi estimate.
    pub tripathi: f64,
    /// ARIA baseline.
    pub aria: f64,
    /// Herodotou static baseline.
    pub herodotou: f64,
}

/// Estimates for a heterogeneous mix: job-count-weighted aggregates
/// plus one [`ClassPoint`] per mix class.
#[derive(Debug, Clone)]
pub struct MixEstimate {
    /// Aggregate fork/join estimate (mean over every job of the mix).
    pub fork_join: f64,
    /// Aggregate Tripathi estimate.
    pub tripathi: f64,
    /// Aggregate ARIA baseline.
    pub aria: f64,
    /// Aggregate Herodotou baseline.
    pub herodotou: f64,
    /// Estimated makespan (first submission → last completion), from
    /// the fork/join per-job responses and the arrival offsets. Equals
    /// the slowest job's response under batch arrivals.
    pub makespan: f64,
    /// Per-class estimates, in mix-entry order.
    pub per_class: Vec<ClassPoint>,
    /// Full fork/join solver output (per-job responses in mix order).
    pub fork_join_detail: SolveResult,
    /// Full Tripathi solver output.
    pub tripathi_detail: SolveResult,
}

/// Windowed staggered-arrival approximation: per-job responses under an
/// arrival schedule, interpolated between each job's *solo* response
/// (no contention) and its response in the *saturated* t = 0 solve
/// (every job concurrent).
///
/// The closed multi-class network the paper solves has no notion of
/// time — it assumes all `N` jobs are in the system from t = 0. With
/// staggered arrivals a job only contends while its execution window
/// `[sⱼ, sⱼ + Rⱼ)` overlaps other jobs' windows, so we weight the
/// contention penalty `fullⱼ − soloⱼ` by the mean pairwise window
/// overlap φⱼ ∈ [0, 1] and iterate to a fixed point (window lengths
/// depend on the responses and vice versa). Fully overlapping windows
/// recover the saturated solve; disjoint windows recover the solo
/// responses.
fn windowed_responses(submits: &[f64], solo: &[f64], full: &[f64]) -> Vec<f64> {
    let n = submits.len();
    debug_assert!(solo.len() == n && full.len() == n);
    if n <= 1 {
        // A single job never contends: its window overlaps nothing.
        return solo.to_vec();
    }
    let mut r = full.to_vec();
    for _ in 0..64 {
        let mut delta = 0.0f64;
        let next: Vec<f64> = (0..n)
            .map(|j| {
                let (sj, ej) = (submits[j], submits[j] + r[j]);
                let len = (ej - sj).max(1e-9);
                let overlap: f64 = (0..n)
                    .filter(|&k| k != j)
                    .map(|k| (ej.min(submits[k] + r[k]) - sj.max(submits[k])).max(0.0))
                    .sum();
                let phi = (overlap / (len * (n - 1) as f64)).clamp(0.0, 1.0);
                let v = solo[j] + phi * (full[j] - solo[j]);
                delta = delta.max((v - r[j]).abs());
                v
            })
            .collect();
        r = next;
        if delta < 1e-9 {
            break;
        }
    }
    r
}

/// Run both estimators and both baselines for a heterogeneous mix of
/// concurrent jobs — the paper's closed queueing network is inherently
/// multi-class, so the mix feeds the solver as one `ModelInput` with a
/// job entry per instance.
///
/// `submits` gives each job's submission offset in seconds, one per job
/// in mix order (`count` consecutive entries per class); an empty slice
/// — or any all-equal schedule — means batch arrivals, the paper's
/// t = 0 assumption, and produces the plain saturated solve
/// bit-for-bit. Under a genuinely staggered schedule the fork/join and
/// Tripathi per-job responses go through the windowed approximation
/// ([`windowed_responses`]); the ARIA and Herodotou baselines keep
/// their batch forms deliberately — they are the static t = 0 models
/// whose breakage under staggered arrivals the error bands quantify.
///
/// Baselines generalize the single-class forms: ARIA scales the slot
/// pool by 1/total (FIFO averaging gives each of the concurrent jobs an
/// equal share) and is evaluated per class, aggregated by job count;
/// Herodotou serializes the whole mix, so every class sees the same
/// static total.
pub fn estimate_mix(
    cfg: &SimConfig,
    classes: &[MixClass],
    submits: &[f64],
    options: &ModelOptions,
    cal: &Calibration,
) -> MixEstimate {
    let mut fj_opts = options.clone();
    fj_opts.estimator = Estimator::ForkJoin;
    let mut tr_opts = options.clone();
    tr_opts.estimator = Estimator::Tripathi;

    let fj_input = mix_model_input(cfg, classes, fj_opts.clone(), cal);
    let tr_input = mix_model_input(cfg, classes, tr_opts.clone(), cal);
    let fj = cached_solve(&fj_input);
    let tr = cached_solve(&tr_input);

    let total: usize = classes.iter().map(|c| c.count).sum();
    assert!(
        submits.is_empty() || submits.len() == total,
        "need one submit offset per job ({} != {total})",
        submits.len()
    );
    assert!(
        submits.iter().all(|t| t.is_finite() && *t >= 0.0),
        "submit offsets must be finite and non-negative"
    );
    let staggered = submits.iter().any(|&t| t != submits[0]);
    // ARIA baseline from the same initial statistics. The bounds model
    // has no notion of concurrent jobs; following its own usage we scale
    // the slot pool by 1/total (each concurrent job effectively receives
    // an equal share under FIFO averaging).
    let slots_total = fj_input
        .cluster
        .total_containers()
        .saturating_sub(fj_input.cluster.reserved_containers)
        .max(1);
    let slots = (slots_total as f64 / total as f64).max(1.0) as u32;
    let mk = |mean: f64, cv: f64| StageStats {
        avg: mean,
        max: mean * (1.0 + 2.0 * cv),
    };
    // Herodotou's static model serializes every job of the mix.
    let herodotou: f64 = classes
        .iter()
        .map(|c| herodotou_estimate(cfg, &c.spec, cal) * c.count as f64)
        .sum();

    // Per-job responses of the two queueing estimators: the saturated
    // solve verbatim for batch arrivals (bit-identical to the pre-
    // arrival-schedule behaviour), the windowed solo↔saturated
    // interpolation for genuinely staggered schedules.
    let (fj_jobs, tr_jobs) = if staggered {
        let mut solo_fj = Vec::with_capacity(total);
        let mut solo_tr = Vec::with_capacity(total);
        for c in classes {
            let alone = [MixClass {
                spec: c.spec.clone(),
                count: 1,
                profile: c.profile.clone(),
            }];
            let s_fj =
                cached_solve(&mix_model_input(cfg, &alone, fj_opts.clone(), cal)).avg_response;
            let s_tr =
                cached_solve(&mix_model_input(cfg, &alone, tr_opts.clone(), cal)).avg_response;
            solo_fj.extend(std::iter::repeat_n(s_fj, c.count));
            solo_tr.extend(std::iter::repeat_n(s_tr, c.count));
        }
        (
            windowed_responses(submits, &solo_fj, &fj.per_job_response),
            windowed_responses(submits, &solo_tr, &tr.per_job_response),
        )
    } else {
        (fj.per_job_response.clone(), tr.per_job_response.clone())
    };

    let mean_of = |slice: &[f64]| slice.iter().sum::<f64>() / slice.len() as f64;
    let mut per_class = Vec::with_capacity(classes.len());
    let mut aria_weighted = 0.0;
    let mut offset = 0;
    for c in classes {
        let job = &fj_input.jobs[offset];
        let profile = AriaProfile {
            num_maps: job.num_maps,
            num_reduces: job.num_reduces,
            map: mk(job.initial_response[0], job.cv[0]),
            shuffle_first: mk(job.initial_response[1], job.cv[1]),
            shuffle_typical: mk(job.initial_response[1], job.cv[1]),
            reduce: mk(job.initial_response[2], job.cv[2]),
        };
        let aria_class = aria_bounds(&profile, slots, slots).avg();
        aria_weighted += aria_class * c.count as f64;
        per_class.push(ClassPoint {
            fork_join: mean_of(&fj_jobs[offset..offset + c.count]),
            tripathi: mean_of(&tr_jobs[offset..offset + c.count]),
            aria: aria_class,
            herodotou,
        });
        offset += c.count;
    }
    // For one class the aggregate is the class value itself — dividing
    // the weighted sum back out could round differently.
    let aria = if classes.len() == 1 {
        per_class[0].aria
    } else {
        aria_weighted / total as f64
    };

    let submit_at = |j: usize| submits.get(j).copied().unwrap_or(0.0);
    let first = (0..total).map(submit_at).fold(f64::MAX, f64::min);
    let makespan = (0..total)
        .map(|j| submit_at(j) + fj_jobs[j])
        .fold(0.0, f64::max)
        - first;

    MixEstimate {
        // Keep the solver's own aggregate for batch arrivals — dividing
        // the per-job list back out could round differently.
        fork_join: if staggered {
            mean_of(&fj_jobs)
        } else {
            fj.avg_response
        },
        tripathi: if staggered {
            mean_of(&tr_jobs)
        } else {
            tr.avg_response
        },
        aria,
        herodotou,
        makespan,
        per_class,
        fork_join_detail: fj,
        tripathi_detail: tr,
    }
}

/// Run both estimators and both baselines for `n_jobs` identical jobs —
/// the single-class convenience over [`estimate_mix`].
///
/// `measured` optionally supplies duration CVs from a profiling run
/// (§4.2.1's "sample techniques"); without it the calibration defaults are
/// used, and the initial responses come from the Herodotou bootstrap
/// either way.
pub fn estimate_workload(
    cfg: &SimConfig,
    spec: &JobSpec,
    n_jobs: usize,
    options: &ModelOptions,
    cal: &Calibration,
    measured: Option<&MeasuredProfile>,
) -> WorkloadEstimate {
    let e = estimate_mix(
        cfg,
        &[MixClass {
            spec: spec.clone(),
            count: n_jobs,
            profile: measured.cloned(),
        }],
        &[],
        options,
        cal,
    );
    WorkloadEstimate {
        fork_join: e.fork_join,
        tripathi: e.tripathi,
        aria: e.aria,
        herodotou: e.herodotou,
        fork_join_detail: e.fork_join_detail,
        tripathi_detail: e.tripathi_detail,
    }
}

/// Schema version of the analytic model's inputs and outputs.
///
/// Bump whenever a change makes previously computed [`ModelPoint`]s
/// incomparable with fresh ones — a new estimator, a changed calibration
/// default, a different record layout. Cache layers (crate
/// `mr2-scenario`) bake this into their content hashes, so persisted
/// results from an older model silently miss instead of serving stale
/// numbers.
///
/// v2: [`ModelPoint`] grew per-class estimates for heterogeneous
/// workload mixes and its record gained a class-count field.
///
/// v3: [`estimate_mix`]/[`eval_mix`] take per-job submit offsets (the
/// windowed staggered-arrival approximation) and [`ModelPoint`] grew a
/// makespan estimate (its record a makespan field).
///
/// v4: open Poisson arrivals ([`crate::open::eval_open_mix`]) —
/// [`ModelPoint`] grew an optional [`OpenMetrics`] tail (bottleneck
/// utilization, knee rate, saturation rate) appended to its record.
pub const MODEL_SCHEMA_VERSION: u32 = 4;

/// Steady-state saturation metrics of an open-arrival evaluation — the
/// tail of a [`ModelPoint`] produced by [`crate::open::eval_open_mix`]
/// (absent on closed/batch points).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpenMetrics {
    /// Utilization of the hottest resource pool at the evaluated λ.
    pub bottleneck_utilization: f64,
    /// Total arrival rate at which the bottleneck reaches the knee
    /// utilization ([`crate::open::DEFAULT_KNEE_UTILIZATION`]) — the
    /// practical capacity ceiling.
    pub knee_rate: f64,
    /// Total arrival rate at which the bottleneck saturates (ρ = 1);
    /// past it no steady state exists and responses are infinite.
    pub saturation_rate: f64,
}

/// The analytic estimates of one configuration point — the narrow entry
/// result batch evaluators (crate `mr2-scenario`) consume. A flat,
/// comparison-ready subset of [`MixEstimate`]: count-weighted aggregates
/// plus one [`ClassPoint`] per mix class.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelPoint {
    /// Aggregate fork/join estimate.
    pub fork_join: f64,
    /// Aggregate Tripathi estimate.
    pub tripathi: f64,
    /// Aggregate ARIA baseline.
    pub aria: f64,
    /// Aggregate Herodotou static baseline.
    pub herodotou: f64,
    /// Estimated makespan (first submission → last completion), from
    /// the fork/join per-job responses and the arrival offsets.
    pub makespan: f64,
    /// Per-class estimates, in mix-entry order (one entry for a
    /// single-job point).
    pub per_class: Vec<ClassPoint>,
    /// Saturation metrics when the point was evaluated under open
    /// Poisson arrivals; `None` for closed/batch points.
    pub open: Option<OpenMetrics>,
}

impl ModelPoint {
    /// The stable serialized form: the four aggregates, the makespan,
    /// the class count, four values per class, then — only for
    /// open-arrival points — the three [`OpenMetrics`] values. The
    /// unit cache layers and services store and ship this.
    pub fn to_record(&self) -> Vec<f64> {
        let mut rec = Vec::with_capacity(6 + 4 * self.per_class.len() + 3);
        rec.extend([self.fork_join, self.tripathi, self.aria, self.herodotou]);
        rec.push(self.makespan);
        rec.push(self.per_class.len() as f64);
        for c in &self.per_class {
            rec.extend([c.fork_join, c.tripathi, c.aria, c.herodotou]);
        }
        if let Some(open) = &self.open {
            rec.extend([
                open.bottleneck_utilization,
                open.knee_rate,
                open.saturation_rate,
            ]);
        }
        rec
    }

    /// Decode a record written by [`ModelPoint::to_record`]; `None` if
    /// the shape doesn't match (a corrupt or foreign record).
    pub fn from_record(rec: &[f64]) -> Option<ModelPoint> {
        let (head, tail) = rec.split_at_checked(6)?;
        let n = head[5] as usize;
        // A point always carries at least one class; the tail is the
        // classes plus, for open-arrival points, exactly three
        // saturation values. Anything else is corrupt or foreign.
        let open = if n == 0 {
            return None;
        } else if tail.len() == 4 * n {
            None
        } else if tail.len() == 4 * n + 3 {
            Some(OpenMetrics {
                bottleneck_utilization: tail[4 * n],
                knee_rate: tail[4 * n + 1],
                saturation_rate: tail[4 * n + 2],
            })
        } else {
            return None;
        };
        Some(ModelPoint {
            fork_join: head[0],
            tripathi: head[1],
            aria: head[2],
            herodotou: head[3],
            makespan: head[4],
            per_class: tail[..4 * n]
                .chunks_exact(4)
                .map(|c| ClassPoint {
                    fork_join: c[0],
                    tripathi: c[1],
                    aria: c[2],
                    herodotou: c[3],
                })
                .collect(),
            open,
        })
    }
}

/// Narrow batch-evaluation entry point for a heterogeneous mix with an
/// arrival schedule: both estimators and both baselines, aggregate and
/// per class. `submits` holds one submission offset per job in mix
/// order; an empty slice means batch (t = 0) arrivals. Deterministic in
/// its inputs, which is what makes results content-addressable.
pub fn eval_mix(
    cfg: &SimConfig,
    classes: &[MixClass],
    submits: &[f64],
    options: &ModelOptions,
    cal: &Calibration,
) -> ModelPoint {
    let e = estimate_mix(cfg, classes, submits, options, cal);
    ModelPoint {
        fork_join: e.fork_join,
        tripathi: e.tripathi,
        aria: e.aria,
        herodotou: e.herodotou,
        makespan: e.makespan,
        per_class: e.per_class,
        open: None,
    }
}

/// Narrow batch-evaluation entry point: both estimators and both
/// baselines for one `(cfg, spec, n_jobs)` point — the single-class,
/// batch-arrival convenience over [`eval_mix`].
pub fn eval_point(
    cfg: &SimConfig,
    spec: &JobSpec,
    n_jobs: usize,
    options: &ModelOptions,
    cal: &Calibration,
    measured: Option<&MeasuredProfile>,
) -> ModelPoint {
    eval_mix(
        cfg,
        &[MixClass {
            spec: spec.clone(),
            count: n_jobs,
            profile: measured.cloned(),
        }],
        &[],
        options,
        cal,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use mapreduce_sim::workload::wordcount_1gb;

    #[test]
    fn all_estimates_positive_and_finite() {
        let cfg = SimConfig::paper_testbed(4);
        let spec = wordcount_1gb(4);
        let e = estimate_workload(
            &cfg,
            &spec,
            1,
            &ModelOptions::default(),
            &Calibration::default(),
            None,
        );
        for (name, v) in [
            ("fork_join", e.fork_join),
            ("tripathi", e.tripathi),
            ("aria", e.aria),
            ("herodotou", e.herodotou),
        ] {
            assert!(v.is_finite() && v > 0.0, "{name} = {v}");
        }
        assert!(e.fork_join_detail.converged);
        assert!(e.tripathi_detail.converged);
    }

    #[test]
    fn eval_point_matches_estimate_workload() {
        let cfg = SimConfig::paper_testbed(4);
        let spec = wordcount_1gb(4);
        let opts = ModelOptions::default();
        let cal = Calibration::default();
        let e = estimate_workload(&cfg, &spec, 2, &opts, &cal, None);
        let p = eval_point(&cfg, &spec, 2, &opts, &cal, None);
        assert_eq!(p.fork_join.to_bits(), e.fork_join.to_bits());
        assert_eq!(p.tripathi.to_bits(), e.tripathi.to_bits());
        assert_eq!(p.aria.to_bits(), e.aria.to_bits());
        assert_eq!(p.herodotou.to_bits(), e.herodotou.to_bits());
    }

    #[test]
    fn model_point_record_roundtrip_is_bit_exact() {
        let class = ClassPoint {
            fork_join: 99.5,
            tripathi: 0.5,
            aria: 1.5,
            herodotou: 2.5,
        };
        let p = ModelPoint {
            fork_join: 0.1 + 0.2,
            tripathi: -0.0,
            aria: f64::from_bits(0x7ff0000000000001),
            herodotou: 1e300,
            makespan: 123.5,
            per_class: vec![class, class],
            open: None,
        };
        let rec = p.to_record();
        assert_eq!(rec.len(), 6 + 4 * 2);
        let q = ModelPoint::from_record(&rec).unwrap();
        assert_eq!(q.fork_join.to_bits(), p.fork_join.to_bits());
        assert_eq!(q.tripathi.to_bits(), p.tripathi.to_bits());
        assert_eq!(q.aria.to_bits(), p.aria.to_bits());
        assert_eq!(q.herodotou.to_bits(), p.herodotou.to_bits());
        assert_eq!(q.makespan.to_bits(), p.makespan.to_bits());
        assert_eq!(q.per_class, p.per_class);
        assert_eq!(q.open, None);
        assert_eq!(ModelPoint::from_record(&rec[..3]), None);
        // A class count that doesn't match the payload is corrupt.
        assert_eq!(ModelPoint::from_record(&[0.0; 6]), None);
        assert_eq!(ModelPoint::from_record(&rec[..10]), None);

        // An open-arrival point carries its three-value tail, with the
        // saturation rate's +∞ surviving the round trip bit-exactly.
        let open = ModelPoint {
            open: Some(OpenMetrics {
                bottleneck_utilization: 0.75,
                knee_rate: 0.09,
                saturation_rate: f64::INFINITY,
            }),
            ..p.clone()
        };
        let rec = open.to_record();
        assert_eq!(rec.len(), 6 + 4 * 2 + 3);
        let q = ModelPoint::from_record(&rec).unwrap();
        assert_eq!(q.open, open.open);
        assert_eq!(q.per_class, open.per_class);
        // A tail of any other length is corrupt.
        assert_eq!(ModelPoint::from_record(&rec[..rec.len() - 1]), None);
    }

    #[test]
    fn mix_estimate_reports_per_class_and_weighted_aggregates() {
        use mapreduce_sim::workload::{grep, terasort};
        use mapreduce_sim::GB;
        let cfg = SimConfig::paper_testbed(4);
        let classes = [
            MixClass {
                spec: wordcount_1gb(4),
                count: 2,
                profile: None,
            },
            MixClass {
                spec: terasort(GB, 4),
                count: 1,
                profile: None,
            },
            MixClass {
                spec: grep(GB),
                count: 1,
                profile: None,
            },
        ];
        let e = estimate_mix(
            &cfg,
            &classes,
            &[],
            &ModelOptions::default(),
            &Calibration::default(),
        );
        assert_eq!(e.per_class.len(), 3);
        assert_eq!(e.fork_join_detail.per_job_response.len(), 4);
        for c in &e.per_class {
            assert!(c.fork_join > 0.0 && c.fork_join.is_finite());
            assert!(c.tripathi > 0.0 && c.aria > 0.0 && c.herodotou > 0.0);
        }
        // The aggregate fork/join is the job-count-weighted mean of the
        // per-class means.
        let weighted =
            (2.0 * e.per_class[0].fork_join + e.per_class[1].fork_join + e.per_class[2].fork_join)
                / 4.0;
        assert!((e.fork_join - weighted).abs() < 1e-9);
        // Herodotou serializes the mix: every class sees the same total.
        assert_eq!(e.per_class[0].herodotou.to_bits(), e.herodotou.to_bits());
        assert_eq!(e.per_class[1].herodotou.to_bits(), e.herodotou.to_bits());
        // Grep's map-heavy class must respond faster than TeraSort's
        // I/O-heavy one under the same contention.
        assert!(e.per_class[2].fork_join < e.per_class[1].fork_join);
    }

    #[test]
    fn single_class_mix_matches_eval_point_bit_for_bit() {
        let cfg = SimConfig::paper_testbed(4);
        let spec = wordcount_1gb(4);
        let opts = ModelOptions::default();
        let cal = Calibration::default();
        let via_point = eval_point(&cfg, &spec, 3, &opts, &cal, None);
        let via_mix = eval_mix(
            &cfg,
            &[MixClass {
                spec: spec.clone(),
                count: 3,
                profile: None,
            }],
            &[],
            &opts,
            &cal,
        );
        assert_eq!(via_point, via_mix);
        assert_eq!(via_point.per_class.len(), 1);
        assert_eq!(
            via_point.per_class[0].fork_join.to_bits(),
            via_point.fork_join.to_bits(),
            "one class ⇒ class estimate is the aggregate"
        );
    }

    #[test]
    fn equal_offset_schedules_match_batch_bit_for_bit() {
        let cfg = SimConfig::paper_testbed(4);
        let classes = [MixClass {
            spec: wordcount_1gb(4),
            count: 3,
            profile: None,
        }];
        let opts = ModelOptions::default();
        let cal = Calibration::default();
        let batch = eval_mix(&cfg, &classes, &[], &opts, &cal);
        let zeros = eval_mix(&cfg, &classes, &[0.0; 3], &opts, &cal);
        // Any all-equal schedule is batch: the jobs fully overlap, so
        // the saturated t = 0 solve applies verbatim.
        let shifted = eval_mix(&cfg, &classes, &[60.0; 3], &opts, &cal);
        assert_eq!(batch, zeros);
        assert_eq!(batch.fork_join.to_bits(), shifted.fork_join.to_bits());
        assert_eq!(batch.per_class, shifted.per_class);
        // Batch makespan is the slowest job's fork/join response.
        let slowest = batch
            .per_class
            .iter()
            .map(|c| c.fork_join)
            .fold(0.0, f64::max);
        assert!(batch.makespan >= slowest * 0.999);
    }

    #[test]
    fn staggered_responses_sit_between_solo_and_saturated() {
        let cfg = SimConfig::paper_testbed(4);
        let spec = wordcount_1gb(4);
        let classes = [MixClass {
            spec: spec.clone(),
            count: 3,
            profile: None,
        }];
        let opts = ModelOptions::default();
        let cal = Calibration::default();
        let solo = estimate_workload(&cfg, &spec, 1, &opts, &cal, None).fork_join;
        let batch = eval_mix(&cfg, &classes, &[], &opts, &cal);

        // A modest stagger: windows still overlap, so the estimate must
        // land strictly between running alone and full saturation.
        let dt = solo * 0.25;
        let staggered = eval_mix(&cfg, &classes, &[0.0, dt, 2.0 * dt], &opts, &cal);
        assert!(
            staggered.fork_join < batch.fork_join,
            "partial overlap must relieve contention: {} vs {}",
            staggered.fork_join,
            batch.fork_join
        );
        assert!(
            staggered.fork_join > solo,
            "overlapping windows still contend: {} vs solo {}",
            staggered.fork_join,
            solo
        );
        assert!(staggered.tripathi < batch.tripathi);
        // The makespan covers the last arrival plus its response.
        assert!(staggered.makespan > 2.0 * dt + solo * 0.999);

        // Arrivals spaced far beyond the solo response are disjoint:
        // every job effectively runs alone.
        let far = solo * 10.0;
        let disjoint = eval_mix(&cfg, &classes, &[0.0, far, 2.0 * far], &opts, &cal);
        assert!(
            (disjoint.fork_join - solo).abs() / solo < 1e-6,
            "disjoint windows must recover the solo response: {} vs {}",
            disjoint.fork_join,
            solo
        );
        assert!((disjoint.makespan - (2.0 * far + solo)).abs() / solo < 1e-6);
        // The static baselines deliberately keep their t = 0 forms.
        assert_eq!(disjoint.aria.to_bits(), batch.aria.to_bits());
        assert_eq!(disjoint.herodotou.to_bits(), batch.herodotou.to_bits());
    }

    #[test]
    fn windowed_responses_interpolate_by_overlap() {
        // Disjoint windows → solo; heavy overlap → close to full.
        let solo = [10.0, 10.0];
        let full = [30.0, 30.0];
        let disjoint = windowed_responses(&[0.0, 1000.0], &solo, &full);
        assert!((disjoint[0] - 10.0).abs() < 1e-6, "{disjoint:?}");
        assert!((disjoint[1] - 10.0).abs() < 1e-6);
        let partial = windowed_responses(&[0.0, 5.0], &solo, &full);
        for r in &partial {
            assert!(*r > 10.0 && *r < 30.0, "{partial:?}");
        }
        // A single job never contends: it gets its solo response.
        assert_eq!(windowed_responses(&[7.0], &[10.0], &[30.0]), vec![10.0]);
    }

    #[test]
    fn memoized_repeat_evaluations_are_byte_identical() {
        // The solve memo must be invisible in the results: evaluating a
        // point again — now served from memo hits — must produce a
        // byte-identical record under every arrival shape (batch,
        // staggered schedule, trace-style irregular offsets).
        let cfg = SimConfig::paper_testbed(4);
        let classes = [MixClass {
            spec: wordcount_1gb(4),
            count: 3,
            profile: None,
        }];
        let opts = ModelOptions::default();
        let cal = Calibration::default();
        let schedules: [&[f64]; 3] = [&[], &[0.0, 60.0, 120.0], &[3.5, 40.25, 97.0]];
        for submits in schedules {
            let first = eval_mix(&cfg, &classes, submits, &opts, &cal);
            let second = eval_mix(&cfg, &classes, submits, &opts, &cal);
            let bits = |p: &ModelPoint| -> Vec<u64> {
                p.to_record().iter().map(|v| v.to_bits()).collect()
            };
            assert_eq!(
                bits(&first),
                bits(&second),
                "memo hits diverged under {submits:?}"
            );
        }
    }

    #[test]
    fn estimates_scale_with_job_count() {
        let cfg = SimConfig::paper_testbed(4);
        let spec = wordcount_1gb(4);
        let one = estimate_workload(
            &cfg,
            &spec,
            1,
            &ModelOptions::default(),
            &Calibration::default(),
            None,
        );
        let four = estimate_workload(
            &cfg,
            &spec,
            4,
            &ModelOptions::default(),
            &Calibration::default(),
            None,
        );
        assert!(four.fork_join > one.fork_join);
        assert!(four.tripathi > one.tripathi);
    }
}
