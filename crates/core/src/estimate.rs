//! High-level estimation API: one call from `(cluster, job, N)` to the
//! paper's model estimates plus the related-work baselines.

use crate::aria::{aria_bounds, AriaProfile, StageStats};
use crate::calibrate::{herodotou_estimate, mix_model_input, Calibration, MixClass};
use crate::input::{Estimator, ModelOptions};
use crate::solver::{solve, SolveResult};
use mapreduce_sim::profile::MeasuredProfile;
use mapreduce_sim::{JobSpec, SimConfig};

/// Estimates of the average job response time for one workload point.
#[derive(Debug, Clone)]
pub struct WorkloadEstimate {
    /// Fork/join-based modified-MVA estimate (the paper's best method).
    pub fork_join: f64,
    /// Tripathi-based estimate.
    pub tripathi: f64,
    /// ARIA `T_avg` baseline (fixed-slot makespan bounds).
    pub aria: f64,
    /// Herodotou static-sum baseline.
    pub herodotou: f64,
    /// Full fork/join solver output.
    pub fork_join_detail: SolveResult,
    /// Full Tripathi solver output.
    pub tripathi_detail: SolveResult,
}

/// All four estimate series of one job class (or, aggregated, of the
/// whole mix).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClassPoint {
    /// Fork/join estimate.
    pub fork_join: f64,
    /// Tripathi estimate.
    pub tripathi: f64,
    /// ARIA baseline.
    pub aria: f64,
    /// Herodotou static baseline.
    pub herodotou: f64,
}

/// Estimates for a heterogeneous mix: job-count-weighted aggregates
/// plus one [`ClassPoint`] per mix class.
#[derive(Debug, Clone)]
pub struct MixEstimate {
    /// Aggregate fork/join estimate (mean over every job of the mix).
    pub fork_join: f64,
    /// Aggregate Tripathi estimate.
    pub tripathi: f64,
    /// Aggregate ARIA baseline.
    pub aria: f64,
    /// Aggregate Herodotou baseline.
    pub herodotou: f64,
    /// Per-class estimates, in mix-entry order.
    pub per_class: Vec<ClassPoint>,
    /// Full fork/join solver output (per-job responses in mix order).
    pub fork_join_detail: SolveResult,
    /// Full Tripathi solver output.
    pub tripathi_detail: SolveResult,
}

/// Run both estimators and both baselines for a heterogeneous mix of
/// concurrent jobs — the paper's closed queueing network is inherently
/// multi-class, so the mix feeds the solver as one `ModelInput` with a
/// job entry per instance.
///
/// Baselines generalize the single-class forms: ARIA scales the slot
/// pool by 1/total (FIFO averaging gives each of the concurrent jobs an
/// equal share) and is evaluated per class, aggregated by job count;
/// Herodotou serializes the whole mix, so every class sees the same
/// static total.
pub fn estimate_mix(
    cfg: &SimConfig,
    classes: &[MixClass],
    options: &ModelOptions,
    cal: &Calibration,
) -> MixEstimate {
    let mut fj_opts = options.clone();
    fj_opts.estimator = Estimator::ForkJoin;
    let mut tr_opts = options.clone();
    tr_opts.estimator = Estimator::Tripathi;

    let fj_input = mix_model_input(cfg, classes, fj_opts, cal);
    let tr_input = mix_model_input(cfg, classes, tr_opts, cal);
    let fj = solve(&fj_input);
    let tr = solve(&tr_input);

    let total: usize = classes.iter().map(|c| c.count).sum();
    // ARIA baseline from the same initial statistics. The bounds model
    // has no notion of concurrent jobs; following its own usage we scale
    // the slot pool by 1/total (each concurrent job effectively receives
    // an equal share under FIFO averaging).
    let slots_total = fj_input
        .cluster
        .total_containers()
        .saturating_sub(fj_input.cluster.reserved_containers)
        .max(1);
    let slots = (slots_total as f64 / total as f64).max(1.0) as u32;
    let mk = |mean: f64, cv: f64| StageStats {
        avg: mean,
        max: mean * (1.0 + 2.0 * cv),
    };
    // Herodotou's static model serializes every job of the mix.
    let herodotou: f64 = classes
        .iter()
        .map(|c| herodotou_estimate(cfg, &c.spec, cal) * c.count as f64)
        .sum();

    let mean_of = |slice: &[f64]| slice.iter().sum::<f64>() / slice.len() as f64;
    let mut per_class = Vec::with_capacity(classes.len());
    let mut aria_weighted = 0.0;
    let mut offset = 0;
    for c in classes {
        let job = &fj_input.jobs[offset];
        let profile = AriaProfile {
            num_maps: job.num_maps,
            num_reduces: job.num_reduces,
            map: mk(job.initial_response[0], job.cv[0]),
            shuffle_first: mk(job.initial_response[1], job.cv[1]),
            shuffle_typical: mk(job.initial_response[1], job.cv[1]),
            reduce: mk(job.initial_response[2], job.cv[2]),
        };
        let aria_class = aria_bounds(&profile, slots, slots).avg();
        aria_weighted += aria_class * c.count as f64;
        per_class.push(ClassPoint {
            fork_join: mean_of(&fj.per_job_response[offset..offset + c.count]),
            tripathi: mean_of(&tr.per_job_response[offset..offset + c.count]),
            aria: aria_class,
            herodotou,
        });
        offset += c.count;
    }
    // For one class the aggregate is the class value itself — dividing
    // the weighted sum back out could round differently.
    let aria = if classes.len() == 1 {
        per_class[0].aria
    } else {
        aria_weighted / total as f64
    };

    MixEstimate {
        fork_join: fj.avg_response,
        tripathi: tr.avg_response,
        aria,
        herodotou,
        per_class,
        fork_join_detail: fj,
        tripathi_detail: tr,
    }
}

/// Run both estimators and both baselines for `n_jobs` identical jobs —
/// the single-class convenience over [`estimate_mix`].
///
/// `measured` optionally supplies duration CVs from a profiling run
/// (§4.2.1's "sample techniques"); without it the calibration defaults are
/// used, and the initial responses come from the Herodotou bootstrap
/// either way.
pub fn estimate_workload(
    cfg: &SimConfig,
    spec: &JobSpec,
    n_jobs: usize,
    options: &ModelOptions,
    cal: &Calibration,
    measured: Option<&MeasuredProfile>,
) -> WorkloadEstimate {
    let e = estimate_mix(
        cfg,
        &[MixClass {
            spec: spec.clone(),
            count: n_jobs,
            profile: measured.cloned(),
        }],
        options,
        cal,
    );
    WorkloadEstimate {
        fork_join: e.fork_join,
        tripathi: e.tripathi,
        aria: e.aria,
        herodotou: e.herodotou,
        fork_join_detail: e.fork_join_detail,
        tripathi_detail: e.tripathi_detail,
    }
}

/// Schema version of the analytic model's inputs and outputs.
///
/// Bump whenever a change makes previously computed [`ModelPoint`]s
/// incomparable with fresh ones — a new estimator, a changed calibration
/// default, a different record layout. Cache layers (crate
/// `mr2-scenario`) bake this into their content hashes, so persisted
/// results from an older model silently miss instead of serving stale
/// numbers.
///
/// v2: [`ModelPoint`] grew per-class estimates for heterogeneous
/// workload mixes and its record gained a class-count field.
pub const MODEL_SCHEMA_VERSION: u32 = 2;

/// The analytic estimates of one configuration point — the narrow entry
/// result batch evaluators (crate `mr2-scenario`) consume. A flat,
/// comparison-ready subset of [`MixEstimate`]: count-weighted aggregates
/// plus one [`ClassPoint`] per mix class.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelPoint {
    /// Aggregate fork/join estimate.
    pub fork_join: f64,
    /// Aggregate Tripathi estimate.
    pub tripathi: f64,
    /// Aggregate ARIA baseline.
    pub aria: f64,
    /// Aggregate Herodotou static baseline.
    pub herodotou: f64,
    /// Per-class estimates, in mix-entry order (one entry for a
    /// single-job point).
    pub per_class: Vec<ClassPoint>,
}

impl ModelPoint {
    /// The stable serialized form: the four aggregates, the class count,
    /// then four values per class — the unit cache layers and services
    /// store and ship.
    pub fn to_record(&self) -> Vec<f64> {
        let mut rec = Vec::with_capacity(5 + 4 * self.per_class.len());
        rec.extend([self.fork_join, self.tripathi, self.aria, self.herodotou]);
        rec.push(self.per_class.len() as f64);
        for c in &self.per_class {
            rec.extend([c.fork_join, c.tripathi, c.aria, c.herodotou]);
        }
        rec
    }

    /// Decode a record written by [`ModelPoint::to_record`]; `None` if
    /// the shape doesn't match (a corrupt or foreign record).
    pub fn from_record(rec: &[f64]) -> Option<ModelPoint> {
        let (head, classes) = rec.split_at_checked(5)?;
        let n = head[4] as usize;
        // A point always carries at least one class; a zero or
        // mismatched count is a corrupt or foreign record.
        if n == 0 || classes.len() != 4 * n {
            return None;
        }
        Some(ModelPoint {
            fork_join: head[0],
            tripathi: head[1],
            aria: head[2],
            herodotou: head[3],
            per_class: classes
                .chunks_exact(4)
                .map(|c| ClassPoint {
                    fork_join: c[0],
                    tripathi: c[1],
                    aria: c[2],
                    herodotou: c[3],
                })
                .collect(),
        })
    }
}

/// Narrow batch-evaluation entry point for a heterogeneous mix: both
/// estimators and both baselines, aggregate and per class. Deterministic
/// in its inputs, which is what makes results content-addressable.
pub fn eval_mix(
    cfg: &SimConfig,
    classes: &[MixClass],
    options: &ModelOptions,
    cal: &Calibration,
) -> ModelPoint {
    let e = estimate_mix(cfg, classes, options, cal);
    ModelPoint {
        fork_join: e.fork_join,
        tripathi: e.tripathi,
        aria: e.aria,
        herodotou: e.herodotou,
        per_class: e.per_class,
    }
}

/// Narrow batch-evaluation entry point: both estimators and both
/// baselines for one `(cfg, spec, n_jobs)` point — the single-class
/// convenience over [`eval_mix`].
pub fn eval_point(
    cfg: &SimConfig,
    spec: &JobSpec,
    n_jobs: usize,
    options: &ModelOptions,
    cal: &Calibration,
    measured: Option<&MeasuredProfile>,
) -> ModelPoint {
    eval_mix(
        cfg,
        &[MixClass {
            spec: spec.clone(),
            count: n_jobs,
            profile: measured.cloned(),
        }],
        options,
        cal,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use mapreduce_sim::workload::wordcount_1gb;

    #[test]
    fn all_estimates_positive_and_finite() {
        let cfg = SimConfig::paper_testbed(4);
        let spec = wordcount_1gb(4);
        let e = estimate_workload(
            &cfg,
            &spec,
            1,
            &ModelOptions::default(),
            &Calibration::default(),
            None,
        );
        for (name, v) in [
            ("fork_join", e.fork_join),
            ("tripathi", e.tripathi),
            ("aria", e.aria),
            ("herodotou", e.herodotou),
        ] {
            assert!(v.is_finite() && v > 0.0, "{name} = {v}");
        }
        assert!(e.fork_join_detail.converged);
        assert!(e.tripathi_detail.converged);
    }

    #[test]
    fn eval_point_matches_estimate_workload() {
        let cfg = SimConfig::paper_testbed(4);
        let spec = wordcount_1gb(4);
        let opts = ModelOptions::default();
        let cal = Calibration::default();
        let e = estimate_workload(&cfg, &spec, 2, &opts, &cal, None);
        let p = eval_point(&cfg, &spec, 2, &opts, &cal, None);
        assert_eq!(p.fork_join.to_bits(), e.fork_join.to_bits());
        assert_eq!(p.tripathi.to_bits(), e.tripathi.to_bits());
        assert_eq!(p.aria.to_bits(), e.aria.to_bits());
        assert_eq!(p.herodotou.to_bits(), e.herodotou.to_bits());
    }

    #[test]
    fn model_point_record_roundtrip_is_bit_exact() {
        let class = ClassPoint {
            fork_join: 99.5,
            tripathi: 0.5,
            aria: 1.5,
            herodotou: 2.5,
        };
        let p = ModelPoint {
            fork_join: 0.1 + 0.2,
            tripathi: -0.0,
            aria: f64::from_bits(0x7ff0000000000001),
            herodotou: 1e300,
            per_class: vec![class, class],
        };
        let rec = p.to_record();
        assert_eq!(rec.len(), 5 + 4 * 2);
        let q = ModelPoint::from_record(&rec).unwrap();
        assert_eq!(q.fork_join.to_bits(), p.fork_join.to_bits());
        assert_eq!(q.tripathi.to_bits(), p.tripathi.to_bits());
        assert_eq!(q.aria.to_bits(), p.aria.to_bits());
        assert_eq!(q.herodotou.to_bits(), p.herodotou.to_bits());
        assert_eq!(q.per_class, p.per_class);
        assert_eq!(ModelPoint::from_record(&rec[..3]), None);
        // A class count that doesn't match the payload is corrupt.
        assert_eq!(ModelPoint::from_record(&[0.0; 5]), None);
        assert_eq!(ModelPoint::from_record(&rec[..9]), None);
    }

    #[test]
    fn mix_estimate_reports_per_class_and_weighted_aggregates() {
        use mapreduce_sim::workload::{grep, terasort};
        use mapreduce_sim::GB;
        let cfg = SimConfig::paper_testbed(4);
        let classes = [
            MixClass {
                spec: wordcount_1gb(4),
                count: 2,
                profile: None,
            },
            MixClass {
                spec: terasort(GB, 4),
                count: 1,
                profile: None,
            },
            MixClass {
                spec: grep(GB),
                count: 1,
                profile: None,
            },
        ];
        let e = estimate_mix(
            &cfg,
            &classes,
            &ModelOptions::default(),
            &Calibration::default(),
        );
        assert_eq!(e.per_class.len(), 3);
        assert_eq!(e.fork_join_detail.per_job_response.len(), 4);
        for c in &e.per_class {
            assert!(c.fork_join > 0.0 && c.fork_join.is_finite());
            assert!(c.tripathi > 0.0 && c.aria > 0.0 && c.herodotou > 0.0);
        }
        // The aggregate fork/join is the job-count-weighted mean of the
        // per-class means.
        let weighted =
            (2.0 * e.per_class[0].fork_join + e.per_class[1].fork_join + e.per_class[2].fork_join)
                / 4.0;
        assert!((e.fork_join - weighted).abs() < 1e-9);
        // Herodotou serializes the mix: every class sees the same total.
        assert_eq!(e.per_class[0].herodotou.to_bits(), e.herodotou.to_bits());
        assert_eq!(e.per_class[1].herodotou.to_bits(), e.herodotou.to_bits());
        // Grep's map-heavy class must respond faster than TeraSort's
        // I/O-heavy one under the same contention.
        assert!(e.per_class[2].fork_join < e.per_class[1].fork_join);
    }

    #[test]
    fn single_class_mix_matches_eval_point_bit_for_bit() {
        let cfg = SimConfig::paper_testbed(4);
        let spec = wordcount_1gb(4);
        let opts = ModelOptions::default();
        let cal = Calibration::default();
        let via_point = eval_point(&cfg, &spec, 3, &opts, &cal, None);
        let via_mix = eval_mix(
            &cfg,
            &[MixClass {
                spec: spec.clone(),
                count: 3,
                profile: None,
            }],
            &opts,
            &cal,
        );
        assert_eq!(via_point, via_mix);
        assert_eq!(via_point.per_class.len(), 1);
        assert_eq!(
            via_point.per_class[0].fork_join.to_bits(),
            via_point.fork_join.to_bits(),
            "one class ⇒ class estimate is the aggregate"
        );
    }

    #[test]
    fn estimates_scale_with_job_count() {
        let cfg = SimConfig::paper_testbed(4);
        let spec = wordcount_1gb(4);
        let one = estimate_workload(
            &cfg,
            &spec,
            1,
            &ModelOptions::default(),
            &Calibration::default(),
            None,
        );
        let four = estimate_workload(
            &cfg,
            &spec,
            4,
            &ModelOptions::default(),
            &Calibration::default(),
            None,
        );
        assert!(four.fork_join > one.fork_join);
        assert!(four.tripathi > one.tripathi);
    }
}
