//! # mr2-model — MapReduce performance models for Hadoop 2.x
//!
//! The paper's primary contribution (Glushkova, Jovanovic, Abelló, EDBT
//! 2017 workshops): an analytic model that predicts the average response
//! time of MapReduce jobs on YARN, for workloads of `N` concurrent jobs,
//! by combining
//!
//! * a **timeline construction** procedure (Algorithm 1) that models
//!   YARN's dynamic container allocation — [`timeline`];
//! * a binary **precedence tree** of serial/parallel-and operators with
//!   P-subtree balancing — [`tree`];
//! * **intra- and inter-job overlap factors** — [`overlap`];
//! * an **overlap-adjusted approximate MVA** over the cluster's service
//!   centers (in crate `queueing`), orchestrated by the A1–A6 loop of
//!   [`solver`];
//! * two tree estimators: **fork/join** (`H₂·max`) and **Tripathi**
//!   (Erlang/hyperexponential algebra);
//! * the **Herodotou static model** ([`herodotou`]) for initialization
//!   and as a baseline, and the **ARIA bounds model** ([`aria`]) as a
//!   second baseline.
//!
//! [`calibrate`] derives model inputs from a cluster/job description, and
//! [`estimate`] bundles everything into one call.

pub mod aria;
pub mod calibrate;
pub mod error;
pub mod estimate;
pub mod herodotou;
pub mod input;
pub mod memo;
pub mod open;
pub mod overlap;
pub mod resources;
pub mod solver;
pub mod timeline;
pub mod tree;

pub use calibrate::{
    herodotou_estimate, job_inputs, mix_model_input, model_input, Calibration, MixClass,
};
pub use error::{abs_relative_error, relative_error, ErrorBand};
pub use estimate::{
    estimate_mix, estimate_workload, eval_mix, eval_point, ClassPoint, MixEstimate, ModelPoint,
    OpenMetrics, WorkloadEstimate, MODEL_SCHEMA_VERSION,
};
pub use input::{
    Center, ClusterInputs, Estimator, JobClassInputs, ModelInput, ModelOptions, TaskClass,
};
pub use memo::cached_solve;
pub use open::{eval_open_mix, DEFAULT_KNEE_UTILIZATION};
pub use resources::{
    job_resources, mean_cluster_share, task_resources, JobResources, TaskResources,
};
pub use solver::{solve, SolveResult};
pub use timeline::{build_timeline, Segment, ShuffleSpec, Timeline, TimelineConfig, TimelineJob};
pub use tree::{build_tree, waves, PrecTree};
