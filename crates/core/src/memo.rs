//! A small process-wide memo of endpoint solves.
//!
//! The windowed staggered-arrival approximation re-solves the *solo*
//! and *saturated* endpoints of each class on every call, and a
//! capacity plan's bisection re-derives the per-class solo solves at
//! every probed node count. Those solves are pure functions of the
//! [`ModelInput`], so a fixed-size cache in front of
//! [`crate::solver::solve`] makes a probe trail or a λ-sweep pay for
//! each *distinct* solve once. Hits return a clone of the original
//! [`SolveResult`] — bit-identical to re-solving, because the solver
//! is deterministic.
//!
//! Keys are the full canonical encoding of the input (every field,
//! f64s by bit pattern), not just a hash — a lookup compares the
//! encodings, so hash collisions cannot serve a wrong result.

use std::collections::{HashMap, VecDeque};
use std::sync::{Mutex, OnceLock};

use crate::input::{Estimator, ModelInput};
use crate::solver::{solve, SolveResult};

/// Entries kept before the oldest is evicted (FIFO). Sized for a λ-sweep
/// or plan bisection over a few dozen distinct configurations, while
/// bounding the memory of a long-lived service.
const CAPACITY: usize = 256;

/// Memoized-solve lookups served from the cache.
fn memo_hits() -> &'static mr2_obs::Counter {
    static C: OnceLock<mr2_obs::Counter> = OnceLock::new();
    C.get_or_init(|| {
        mr2_obs::counter(
            "mr2_endpoint_memo_hits_total",
            "Endpoint solves served from the process-wide solve memo.",
        )
    })
}

/// Memoized-solve lookups that had to run the solver.
fn memo_misses() -> &'static mr2_obs::Counter {
    static C: OnceLock<mr2_obs::Counter> = OnceLock::new();
    C.get_or_init(|| {
        mr2_obs::counter(
            "mr2_endpoint_memo_misses_total",
            "Endpoint solves that missed the process-wide solve memo.",
        )
    })
}

struct Memo {
    map: HashMap<Vec<u64>, SolveResult>,
    order: VecDeque<Vec<u64>>,
}

fn memo() -> &'static Mutex<Memo> {
    static M: OnceLock<Mutex<Memo>> = OnceLock::new();
    M.get_or_init(|| {
        Mutex::new(Memo {
            map: HashMap::with_capacity(CAPACITY),
            order: VecDeque::with_capacity(CAPACITY),
        })
    })
}

/// The canonical form of a [`ModelInput`]: every solver-relevant field,
/// in a fixed order, f64s by bit pattern. Two inputs with equal
/// encodings produce bit-identical [`SolveResult`]s.
fn encode(input: &ModelInput) -> Vec<u64> {
    let c = &input.cluster;
    let o = &input.options;
    let mut k = Vec::with_capacity(11 + input.jobs.len() * 18);
    k.push(c.num_nodes as u64);
    k.push(c.cpu_per_node as u64);
    k.push(c.disk_per_node as u64);
    k.push(c.max_maps_per_node as u64);
    k.push(c.max_reduce_per_node as u64);
    k.push(c.reserved_containers as u64);
    k.push(match o.estimator {
        Estimator::ForkJoin => 0,
        Estimator::Tripathi => 1,
    });
    k.push(
        o.slow_start as u64 | (o.balance_tree as u64) << 1 | (o.use_overlap_factors as u64) << 2,
    );
    k.push(o.epsilon.to_bits());
    k.push(o.max_iterations as u64);
    k.push(input.jobs.len() as u64);
    for j in &input.jobs {
        k.push(u64::from(j.num_maps) << 32 | u64::from(j.num_reduces));
        for row in &j.demands {
            for d in row {
                k.push(d.to_bits());
            }
        }
        for r in &j.initial_response {
            k.push(r.to_bits());
        }
        for cv in &j.cv {
            k.push(cv.to_bits());
        }
        k.push(j.shuffle_per_map.to_bits());
        for ov in &j.overhead {
            k.push(ov.to_bits());
        }
    }
    k
}

/// [`solve`] behind the process-wide memo: a hit clones the stored
/// result, a miss solves and stores. Bit-identical to calling the
/// solver directly.
pub fn cached_solve(input: &ModelInput) -> SolveResult {
    let key = encode(input);
    if let Some(hit) = memo().lock().unwrap().map.get(&key) {
        memo_hits().inc();
        return hit.clone();
    }
    memo_misses().inc();
    // Only misses get a span: hits are a hash lookup and would bury
    // the profile in no-op frames, while each miss is a full MVA
    // endpoint solve worth attributing under model.eval.
    let result = {
        let _solve = mr2_obs::span("model.endpoint_solve");
        solve(input)
    };
    let mut m = memo().lock().unwrap();
    if !m.map.contains_key(&key) {
        if m.map.len() >= CAPACITY {
            if let Some(oldest) = m.order.pop_front() {
                m.map.remove(&oldest);
            }
        }
        m.order.push_back(key.clone());
        m.map.insert(key, result.clone());
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::input::{ClusterInputs, JobClassInputs, ModelOptions};

    fn input(nodes: usize, maps: u32) -> ModelInput {
        ModelInput {
            cluster: ClusterInputs {
                num_nodes: nodes,
                cpu_per_node: 12,
                disk_per_node: 1,
                max_maps_per_node: 4,
                max_reduce_per_node: 4,
                reserved_containers: 1,
            },
            jobs: vec![JobClassInputs {
                num_maps: maps,
                num_reduces: 4,
                demands: [[30.0, 2.0, 0.2], [0.1, 0.5, 4.0], [1.0, 5.0, 1.0]],
                initial_response: [34.2, 4.6, 7.0],
                cv: [0.15, 0.4, 0.25],
                shuffle_per_map: 1.0,
                overhead: [2.0, 2.0, 0.0],
            }],
            options: ModelOptions::default(),
        }
    }

    fn bits(r: &SolveResult) -> Vec<u64> {
        let mut b = vec![r.avg_response.to_bits(), r.makespan.to_bits()];
        b.extend(r.per_job_response.iter().map(|x| x.to_bits()));
        b.extend(r.durations.iter().flatten().map(|x| x.to_bits()));
        b
    }

    #[test]
    fn hit_is_bit_identical_to_direct_solve() {
        let inp = input(4, 8);
        let direct = solve(&inp);
        let first = cached_solve(&inp);
        let second = cached_solve(&inp);
        assert_eq!(bits(&direct), bits(&first));
        assert_eq!(bits(&first), bits(&second));
        assert_eq!(first.iterations, direct.iterations);
        assert_eq!(first.tree_depths, direct.tree_depths);
    }

    #[test]
    fn memo_counts_hits_and_misses() {
        let (h0, m0) = (memo_hits().value(), memo_misses().value());
        // A fresh input (distinct map count) must miss once, then hit.
        let inp = input(5, 11);
        cached_solve(&inp);
        cached_solve(&inp);
        assert!(memo_misses().value() > m0, "first solve misses");
        assert!(memo_hits().value() > h0, "second solve hits");
    }

    #[test]
    fn distinct_inputs_get_distinct_entries() {
        let a = cached_solve(&input(4, 16));
        let b = cached_solve(&input(8, 16));
        assert_ne!(
            a.avg_response.to_bits(),
            b.avg_response.to_bits(),
            "different node counts must not collide"
        );
    }

    #[test]
    fn encoding_covers_every_field() {
        // Flipping any single field must change the canonical form.
        let base = encode(&input(4, 8));
        let mut tweaked = input(4, 8);
        tweaked.jobs[0].cv[2] += 1e-9;
        assert_ne!(base, encode(&tweaked));
        let mut tweaked = input(4, 8);
        tweaked.options.slow_start = false;
        assert_ne!(base, encode(&tweaked));
        let mut tweaked = input(4, 8);
        tweaked.cluster.reserved_containers = 2;
        assert_ne!(base, encode(&tweaked));
        let mut tweaked = input(4, 8);
        tweaked.jobs[0].overhead[1] = 3.0;
        assert_ne!(base, encode(&tweaked));
    }
}
