//! The ARIA bounds model (Verma, Cherkasova, Campbell — ICAC'11), the
//! related-work baseline of §2.1.
//!
//! Applies the Makespan Theorem for greedy task assignment: `n` tasks of
//! mean duration `μ` and max duration `λ` on `k` slots complete within
//! `[n·μ/k, (n−1)·μ/k + λ]`. ARIA composes these bounds over the map,
//! (typical) shuffle, and reduce stages and estimates the completion time
//! as `T_avg = (T_up + T_low)/2`, reported accurate within ~15% on
//! Hadoop 1.x. Its key limitation — the reason the paper builds a new
//! model — is the fixed slot counts `S_M`, `S_R`.

/// Stage statistics for the ARIA profile.
#[derive(Debug, Clone, Copy)]
pub struct StageStats {
    /// Mean task duration in the stage.
    pub avg: f64,
    /// Maximum task duration in the stage.
    pub max: f64,
}

/// An ARIA job profile.
#[derive(Debug, Clone)]
pub struct AriaProfile {
    /// Number of map tasks.
    pub num_maps: u32,
    /// Number of reduce tasks.
    pub num_reduces: u32,
    /// Map task durations.
    pub map: StageStats,
    /// First-wave shuffle durations (overlapped with maps).
    pub shuffle_first: StageStats,
    /// Typical (non-overlapped) shuffle durations.
    pub shuffle_typical: StageStats,
    /// Reduce (merge + reduce + write) durations.
    pub reduce: StageStats,
}

/// Completion-time bounds.
#[derive(Debug, Clone, Copy)]
pub struct AriaBounds {
    /// Lower bound `T_J^low`.
    pub low: f64,
    /// Upper bound `T_J^up`.
    pub up: f64,
}

impl AriaBounds {
    /// The estimate ARIA uses: `(low + up)/2`.
    pub fn avg(&self) -> f64 {
        0.5 * (self.low + self.up)
    }
}

/// Makespan Theorem bounds for one stage of `n` tasks on `k` slots.
fn stage_bounds(n: u32, k: u32, s: StageStats) -> (f64, f64) {
    if n == 0 {
        return (0.0, 0.0);
    }
    let k = k.max(1) as f64;
    let n = n as f64;
    (n * s.avg / k, (n - 1.0) * s.avg / k + s.max)
}

/// ARIA's completion-time bounds for a job on `map_slots`/`reduce_slots`.
pub fn aria_bounds(p: &AriaProfile, map_slots: u32, reduce_slots: u32) -> AriaBounds {
    let (map_low, map_up) = stage_bounds(p.num_maps, map_slots, p.map);
    let (sh_low, sh_up) = stage_bounds(
        p.num_reduces
            .saturating_sub(reduce_slots.min(p.num_reduces)),
        reduce_slots,
        p.shuffle_typical,
    );
    let (red_low, red_up) = stage_bounds(p.num_reduces, reduce_slots, p.reduce);
    // The first shuffle wave overlaps the map stage; ARIA adds its average
    // (lower bound) / max (upper bound) once.
    let first_sh_low = if p.num_reduces > 0 {
        p.shuffle_first.avg
    } else {
        0.0
    };
    let first_sh_up = if p.num_reduces > 0 {
        p.shuffle_first.max
    } else {
        0.0
    };
    AriaBounds {
        low: map_low + first_sh_low + sh_low + red_low,
        up: map_up + first_sh_up + sh_up + red_up,
    }
}

/// Smallest slot count that meets `deadline` according to `T_avg`, holding
/// map and reduce slots equal — ARIA's resource-inference question
/// ("for a given job completion deadline, allocate the appropriate amount
/// of resources"). Returns `None` if even `max_slots` misses the deadline.
pub fn slots_for_deadline(p: &AriaProfile, deadline: f64, max_slots: u32) -> Option<u32> {
    (1..=max_slots).find(|&k| aria_bounds(p, k, k).avg() <= deadline)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile() -> AriaProfile {
        AriaProfile {
            num_maps: 16,
            num_reduces: 4,
            map: StageStats {
                avg: 40.0,
                max: 50.0,
            },
            shuffle_first: StageStats { avg: 5.0, max: 8.0 },
            shuffle_typical: StageStats { avg: 5.0, max: 8.0 },
            reduce: StageStats {
                avg: 20.0,
                max: 25.0,
            },
        }
    }

    #[test]
    fn bounds_are_ordered() {
        let b = aria_bounds(&profile(), 8, 4);
        assert!(b.low > 0.0);
        assert!(b.up >= b.low);
        assert!(b.avg() >= b.low && b.avg() <= b.up);
    }

    #[test]
    fn map_stage_bounds_match_makespan_theorem() {
        let p = AriaProfile {
            num_reduces: 0,
            ..profile()
        };
        let b = aria_bounds(&p, 8, 1);
        // 16 maps on 8 slots: low = 16·40/8 = 80; up = 15·40/8 + 50 = 125.
        assert!((b.low - 80.0).abs() < 1e-9);
        assert!((b.up - 125.0).abs() < 1e-9);
    }

    #[test]
    fn more_slots_never_hurts() {
        let p = profile();
        let mut prev = f64::INFINITY;
        for k in 1..=16 {
            let avg = aria_bounds(&p, k, k).avg();
            assert!(avg <= prev + 1e-9, "k={k}: {avg} > {prev}");
            prev = avg;
        }
    }

    #[test]
    fn deadline_inference() {
        let p = profile();
        let t8 = aria_bounds(&p, 8, 8).avg();
        let k = slots_for_deadline(&p, t8, 32).unwrap();
        assert!(k <= 8, "8 slots meet their own deadline");
        assert!(
            slots_for_deadline(&p, 1.0, 32).is_none(),
            "impossible deadline"
        );
    }
}
