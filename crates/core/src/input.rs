//! Model inputs — the paper's Table 2 plus solver options.

/// The paper's task classes (§4.1): map, shuffle-sort (shuffle + partial
/// sorts), merge (final sort + reduce function + write).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TaskClass {
    /// Map tasks.
    Map,
    /// Shuffle-sort subtask of a reduce.
    ShuffleSort,
    /// Merge subtask of a reduce.
    Merge,
}

impl TaskClass {
    /// The three classes in canonical order.
    pub const ALL: [TaskClass; 3] = [TaskClass::Map, TaskClass::ShuffleSort, TaskClass::Merge];

    /// Canonical index (0, 1, 2).
    pub fn index(self) -> usize {
        match self {
            TaskClass::Map => 0,
            TaskClass::ShuffleSort => 1,
            TaskClass::Merge => 2,
        }
    }
}

/// The paper's service-center types (§4.1): "We consider 2 types of
/// service centers (resources): CPU&Memory and Network" — we additionally
/// carry the disk, which the configuration parameters (`diskPerNode`,
/// Table 2) imply and which Herodotou's phase costs require.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Center {
    /// CPU & memory of a node.
    CpuMem,
    /// Disk(s) of a node.
    Disk,
    /// The cluster network.
    Network,
}

impl Center {
    /// The center types in canonical order.
    pub const ALL: [Center; 3] = [Center::CpuMem, Center::Disk, Center::Network];
}

/// Per-class workload statistics of one job (Table 2's workload
/// parameters, plus CVs for the Tripathi estimator).
#[derive(Debug, Clone)]
pub struct JobClassInputs {
    /// `m`: number of map tasks.
    pub num_maps: u32,
    /// `r`: number of reduce tasks.
    pub num_reduces: u32,
    /// `S_{i,k}`: unloaded residence time (service demand) of one class-i
    /// task at each center type, seconds: `[class][center]`.
    pub demands: [[f64; 3]; 3],
    /// Initial average response time per class (from a profile or the
    /// Herodotou bootstrap — §4.2.1).
    pub initial_response: [f64; 3],
    /// Duration coefficient of variation per class.
    pub cv: [f64; 3],
    /// Per-map shuffle transfer time `sd` (seconds to move one map's
    /// output partition for *all* reduces) — Algorithm 1's `m.sd`.
    pub shuffle_per_map: f64,
    /// Fixed scheduling/launch overhead per class (container localization,
    /// JVM start, heartbeat latency), modeled as a delay center so the MVA
    /// never queues it.
    pub overhead: [f64; 3],
}

/// Cluster-side inputs (Table 2's configuration parameters).
#[derive(Debug, Clone)]
pub struct ClusterInputs {
    /// `numNodes`.
    pub num_nodes: usize,
    /// `cpuPerNode`: CPU servers (cores) per node.
    pub cpu_per_node: u32,
    /// `diskPerNode`: disks per node.
    pub disk_per_node: u32,
    /// `MaxMapPerNode`: max map containers per node.
    pub max_maps_per_node: u32,
    /// `MaxReducePerNode`: max reduce containers per node.
    pub max_reduce_per_node: u32,
    /// Containers reserved cluster-wide (e.g. one AM container per
    /// concurrent job); spread round-robin over nodes when building
    /// timeline pools.
    pub reserved_containers: u32,
}

impl ClusterInputs {
    /// Total containers in execution `T = n × max(maps, reduces)` (§4.3).
    pub fn total_containers(&self) -> u32 {
        self.num_nodes as u32 * self.max_maps_per_node.max(self.max_reduce_per_node)
    }
}

/// Which tree estimator to use (§4.2.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Estimator {
    /// Fork/join-based: `R = H_k · max(children)` \[10, 12\].
    ForkJoin,
    /// Tripathi-based: Erlang/hyperexponential distribution algebra \[4\].
    Tripathi,
}

/// Solver options.
#[derive(Debug, Clone)]
pub struct ModelOptions {
    /// Tree estimator.
    pub estimator: Estimator,
    /// Whether reduces slow-start at the first finished map (Algorithm 1
    /// lines 7–11). `false` = reduces start after the last map.
    pub slow_start: bool,
    /// Balance P-subtrees to cut tree depth (§4.2.2). The paper's §5.2
    /// shows disabling this increases error with many maps.
    pub balance_tree: bool,
    /// Convergence threshold ε (§4.2.6; recommended 1e-7).
    pub epsilon: f64,
    /// Iteration cap for the A2–A6 loop.
    pub max_iterations: usize,
    /// Apply the Mak–Lundstrom overlap factors in the MVA (§4.2.3).
    /// `false` degrades to plain Bard–Schweitzer (every class sees every
    /// queue) — the ablation showing why the factors matter.
    pub use_overlap_factors: bool,
}

impl Default for ModelOptions {
    fn default() -> Self {
        ModelOptions {
            estimator: Estimator::ForkJoin,
            slow_start: true,
            balance_tree: true,
            epsilon: 1e-7,
            max_iterations: 200,
            use_overlap_factors: true,
        }
    }
}

/// The full model input: a cluster plus `N` concurrent jobs.
#[derive(Debug, Clone)]
pub struct ModelInput {
    /// Cluster configuration.
    pub cluster: ClusterInputs,
    /// One entry per concurrent job.
    pub jobs: Vec<JobClassInputs>,
    /// Options.
    pub options: ModelOptions,
}

impl ModelInput {
    /// Validate consistency; panics with a description otherwise.
    pub fn validate(&self) {
        assert!(self.cluster.num_nodes > 0);
        assert!(self.cluster.max_maps_per_node > 0);
        assert!(!self.jobs.is_empty(), "need at least one job");
        for (i, j) in self.jobs.iter().enumerate() {
            assert!(j.num_maps > 0, "job {i} has no maps");
            for c in 0..3 {
                assert!(
                    j.initial_response[c] >= 0.0 && j.cv[c] >= 0.0,
                    "job {i} class {c}: bad stats"
                );
                for k in 0..3 {
                    assert!(j.demands[c][k] >= 0.0, "job {i}: negative demand");
                }
            }
        }
        assert!(self.options.epsilon > 0.0);
        assert!(self.options.max_iterations > 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn tiny_job() -> JobClassInputs {
        JobClassInputs {
            num_maps: 4,
            num_reduces: 1,
            demands: [[10.0, 2.0, 0.0], [0.0, 0.5, 3.0], [1.0, 2.0, 0.5]],
            initial_response: [12.0, 3.5, 3.5],
            cv: [0.1, 0.3, 0.2],
            shuffle_per_map: 0.5,
            overhead: [2.0, 0.0, 2.0],
        }
    }

    #[test]
    fn validate_accepts_sane_input() {
        let input = ModelInput {
            cluster: ClusterInputs {
                num_nodes: 3,
                cpu_per_node: 12,
                disk_per_node: 1,
                max_maps_per_node: 1,
                max_reduce_per_node: 1,
                reserved_containers: 0,
            },
            jobs: vec![tiny_job()],
            options: ModelOptions::default(),
        };
        input.validate();
        assert_eq!(input.cluster.total_containers(), 3);
    }

    #[test]
    #[should_panic(expected = "no maps")]
    fn validate_rejects_zero_maps() {
        let mut j = tiny_job();
        j.num_maps = 0;
        ModelInput {
            cluster: ClusterInputs {
                num_nodes: 1,
                cpu_per_node: 1,
                disk_per_node: 1,
                max_maps_per_node: 1,
                max_reduce_per_node: 1,
                reserved_containers: 0,
            },
            jobs: vec![j],
            options: ModelOptions::default(),
        }
        .validate();
    }

    #[test]
    fn class_indices() {
        for (i, c) in TaskClass::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
    }
}
