//! Open-arrival evaluation: jobs stream in as a Poisson process instead
//! of standing in the closed t = 0 batch the paper solves.
//!
//! The closed model answers "N jobs are in the system"; capacity
//! planning asks "jobs *arrive* at rate λ — what response do they see,
//! and where does the cluster saturate?" This module answers by
//! decomposition:
//!
//! 1. each mix class's *solo* response comes from the paper's own
//!    closed machinery (a count = 1 solve — timelines, precedence
//!    trees, overlap-adjusted MVA — so intra-job parallelism is
//!    modeled exactly as in the closed case);
//! 2. the *inter-job* contention comes from an open product-form
//!    network over the cluster's service centers
//!    ([`queueing::solve_open`]): each arriving class-c job deposits
//!    its total work at the CPU, disk, and NIC pools, utilizations are
//!    `ρ_k = Σ_c λ_c·W_ck / m_k`, and the class's extra *waiting* time
//!    is its open residence minus its bare service demand;
//! 3. the open response is the sum: solo response + open waiting.
//!
//! Because every ρ_k is linear in λ, saturation is analytic: the
//! bottleneck crosses ρ = 1 at `λ_sat = λ/ρ_max`, and the *knee* — the
//! arrival rate past which responses climb steeply — is where the
//! bottleneck crosses [`DEFAULT_KNEE_UTILIZATION`]. Past `λ_sat` no
//! steady state exists and responses are reported as `∞`.
//!
//! The ARIA and Herodotou baselines have no open-arrival form; they are
//! reported as their static single-job values, the same deliberate
//! "t = 0 models under a schedule they don't understand" treatment the
//! staggered-arrival path gives them.

use crate::calibrate::{mix_model_input, Calibration, MixClass};
use crate::estimate::{estimate_mix, ClassPoint, ModelPoint, OpenMetrics};
use crate::input::ModelInput;
use mapreduce_sim::SimConfig;
use queueing::network::{ClosedNetwork, Station};
use queueing::solve_open;

/// Bottleneck utilization defining the saturation *knee*: the arrival
/// rate at which the hottest resource reaches this load. 0.9 is the
/// conventional "responses start to diverge" operating ceiling — at
/// ρ = 0.9 an M/M/1's waiting time is already 9× its service time.
pub const DEFAULT_KNEE_UTILIZATION: f64 = 0.9;

/// Total service demand one class-`c` job places on each cluster-wide
/// center pool `(cpu, disk, nic)`, summing every task of the job: maps
/// carry the map-class demand, each reduce carries the shuffle/sort and
/// merge class demands.
fn job_work(job: &crate::input::JobClassInputs) -> [f64; 3] {
    let tasks = [
        f64::from(job.num_maps),
        f64::from(job.num_reduces),
        f64::from(job.num_reduces),
    ];
    let mut work = [0.0; 3];
    for (c, &n) in tasks.iter().enumerate() {
        for (k, w) in work.iter_mut().enumerate() {
            *w += n * job.demands[c][k];
        }
    }
    work
}

/// The open contention network: one multi-server station per
/// cluster-wide resource pool (`n·cpuPerNode` cores, `n·diskPerNode`
/// disks, `n` NICs — the same capacities the closed network spreads
/// across per-node stations), one class per *mix class* whose demand is
/// the whole job's work at that pool. Fixed overheads are pure delay
/// and contribute no queueing, so they are left out.
fn open_network(input: &ModelInput, classes: &[MixClass]) -> ClosedNetwork {
    let n = input.cluster.num_nodes as u32;
    let stations = vec![
        Station::multi("cpu", (n * input.cluster.cpu_per_node).max(1)),
        Station::multi("disk", (n * input.cluster.disk_per_node).max(1)),
        Station::multi("nic", n.max(1)),
    ];
    let mut names = Vec::with_capacity(classes.len());
    let mut demands = Vec::with_capacity(classes.len());
    let mut offset = 0;
    for (i, c) in classes.iter().enumerate() {
        names.push(format!("mix{i}"));
        demands.push(job_work(&input.jobs[offset]).to_vec());
        offset += c.count;
    }
    ClosedNetwork::new(stations, names, demands)
}

/// Evaluate a heterogeneous mix under open Poisson arrivals at
/// `arrival_rate` total jobs/second (split across classes by their
/// `count` share). Returns a [`ModelPoint`] whose fork/join and
/// Tripathi series are open responses (solo + waiting), whose
/// baselines are the static solo values, and whose
/// [`ModelPoint::open`] tail carries the bottleneck utilization and
/// the knee/saturation rates. Unstable points (`λ ≥ λ_sat`) report
/// infinite responses — the far side of the knee, not an error.
pub fn eval_open_mix(
    cfg: &SimConfig,
    classes: &[MixClass],
    arrival_rate: f64,
    options: &crate::input::ModelOptions,
    cal: &Calibration,
) -> ModelPoint {
    assert!(
        arrival_rate.is_finite() && arrival_rate > 0.0,
        "arrival rate must be positive and finite"
    );
    let input = mix_model_input(cfg, classes, options.clone(), cal);
    let net = open_network(&input, classes);

    let total: usize = classes.iter().map(|c| c.count).sum();
    let rates: Vec<f64> = classes
        .iter()
        .map(|c| arrival_rate * c.count as f64 / total as f64)
        .collect();
    let sol = solve_open(&net, &rates);

    let mut per_class = Vec::with_capacity(classes.len());
    let mut agg = [0.0f64; 4]; // fj, tr, aria, herodotou, rate-weighted
    for (i, c) in classes.iter().enumerate() {
        // The solo point: the paper's full closed solve of this class
        // running alone, plus its static baselines.
        let alone = [MixClass {
            spec: c.spec.clone(),
            count: 1,
            profile: c.profile.clone(),
        }];
        let solo = estimate_mix(cfg, &alone, &[], options, cal);
        let demand: f64 = net.demands[i].iter().sum();
        let waiting = if sol.stable {
            (sol.response[i] - demand).max(0.0)
        } else {
            f64::INFINITY
        };
        let point = ClassPoint {
            fork_join: solo.fork_join + waiting,
            tripathi: solo.tripathi + waiting,
            aria: solo.aria,
            herodotou: solo.herodotou,
        };
        let w = c.count as f64 / total as f64;
        agg[0] += w * point.fork_join;
        agg[1] += w * point.tripathi;
        agg[2] += w * point.aria;
        agg[3] += w * point.herodotou;
        per_class.push(point);
    }
    // One class: the aggregate is the class value itself (weight 1
    // multiplication could round differently).
    if classes.len() == 1 {
        agg = [
            per_class[0].fork_join,
            per_class[0].tripathi,
            per_class[0].aria,
            per_class[0].herodotou,
        ];
    }

    // Expected span of `total` Poisson arrivals plus the last one's
    // steady-state sojourn — the finite-sample makespan a simulator
    // drawing the same number of arrivals would see on average.
    let makespan = (total - 1) as f64 / arrival_rate + agg[0];

    let saturation_rate = arrival_rate * sol.saturation_scale();
    ModelPoint {
        fork_join: agg[0],
        tripathi: agg[1],
        aria: agg[2],
        herodotou: agg[3],
        makespan,
        per_class,
        open: Some(OpenMetrics {
            bottleneck_utilization: sol.bottleneck_utilization(),
            knee_rate: DEFAULT_KNEE_UTILIZATION * saturation_rate,
            saturation_rate,
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::input::ModelOptions;
    use mapreduce_sim::workload::{grep, wordcount_1gb};
    use mapreduce_sim::GB;

    fn one_class() -> Vec<MixClass> {
        vec![MixClass {
            spec: wordcount_1gb(4),
            count: 1,
            profile: None,
        }]
    }

    #[test]
    fn open_response_is_monotone_in_arrival_rate() {
        let cfg = SimConfig::paper_testbed(4);
        let (opts, cal) = (ModelOptions::default(), Calibration::default());
        let classes = one_class();
        let mut last = 0.0;
        let mut rate = 1e-4;
        for _ in 0..8 {
            let p = eval_open_mix(&cfg, &classes, rate, &opts, &cal);
            assert!(
                p.fork_join > last,
                "response must be non-decreasing in λ: {} at λ={rate}",
                p.fork_join
            );
            assert!(p.tripathi > 0.0);
            last = p.fork_join;
            rate *= 2.0;
        }
    }

    #[test]
    fn knee_sits_below_saturation_and_divides_finite_from_infinite() {
        let cfg = SimConfig::paper_testbed(4);
        let (opts, cal) = (ModelOptions::default(), Calibration::default());
        let classes = one_class();
        let probe = eval_open_mix(&cfg, &classes, 1e-3, &opts, &cal);
        let open = probe.open.expect("open tail present");
        assert!(open.saturation_rate.is_finite() && open.saturation_rate > 0.0);
        assert!(
            (open.knee_rate - DEFAULT_KNEE_UTILIZATION * open.saturation_rate).abs()
                < 1e-12 * open.saturation_rate
        );

        // Below the knee: finite, stable. Past saturation: infinite.
        let below = eval_open_mix(&cfg, &classes, open.knee_rate * 0.5, &opts, &cal);
        assert!(below.fork_join.is_finite());
        assert!(below.open.unwrap().bottleneck_utilization < DEFAULT_KNEE_UTILIZATION);
        let past = eval_open_mix(&cfg, &classes, open.saturation_rate * 1.1, &opts, &cal);
        assert!(past.fork_join.is_infinite());
        assert!(past.open.unwrap().bottleneck_utilization > 1.0);
        // Saturation itself is scale-invariant: both probes agree on it.
        let s1 = below.open.unwrap().saturation_rate;
        assert!((s1 - open.saturation_rate).abs() < 1e-9 * s1);
    }

    #[test]
    fn vanishing_rate_recovers_the_solo_response() {
        let cfg = SimConfig::paper_testbed(4);
        let (opts, cal) = (ModelOptions::default(), Calibration::default());
        let classes = one_class();
        let solo = estimate_mix(&cfg, &classes, &[], &opts, &cal);
        let p = eval_open_mix(&cfg, &classes, 1e-9, &opts, &cal);
        assert!(
            (p.fork_join - solo.fork_join).abs() / solo.fork_join < 1e-6,
            "λ→0 must recover the solo closed solve: {} vs {}",
            p.fork_join,
            solo.fork_join
        );
    }

    #[test]
    fn more_nodes_raise_the_saturation_rate_and_cut_response() {
        let cfg4 = SimConfig::paper_testbed(4);
        let cfg8 = SimConfig::paper_testbed(8);
        let (opts, cal) = (ModelOptions::default(), Calibration::default());
        let classes = one_class();
        let rate = {
            let probe = eval_open_mix(&cfg4, &classes, 1e-3, &opts, &cal);
            probe.open.unwrap().knee_rate * 0.8
        };
        let small = eval_open_mix(&cfg4, &classes, rate, &opts, &cal);
        let big = eval_open_mix(&cfg8, &classes, rate, &opts, &cal);
        assert!(big.fork_join < small.fork_join, "more nodes, less waiting");
        assert!(
            big.open.unwrap().saturation_rate > small.open.unwrap().saturation_rate,
            "more nodes absorb a higher λ"
        );
    }

    #[test]
    fn mixed_classes_split_the_rate_by_count() {
        let cfg = SimConfig::paper_testbed(4);
        let (opts, cal) = (ModelOptions::default(), Calibration::default());
        let classes = vec![
            MixClass {
                spec: wordcount_1gb(4),
                count: 3,
                profile: None,
            },
            MixClass {
                spec: grep(GB),
                count: 1,
                profile: None,
            },
        ];
        let p = eval_open_mix(&cfg, &classes, 1e-3, &opts, &cal);
        assert_eq!(p.per_class.len(), 2);
        assert!(p.per_class.iter().all(|c| c.fork_join.is_finite()));
        // The aggregate is the count-weighted mean.
        let weighted = (3.0 * p.per_class[0].fork_join + p.per_class[1].fork_join) / 4.0;
        assert!((p.fork_join - weighted).abs() < 1e-9 * weighted.max(1.0));
        // Baselines stay static solo values (no open form).
        assert!(p.per_class[0].aria.is_finite() && p.per_class[0].herodotou.is_finite());
    }
}
