//! Overlap factors and class populations from a timeline (§4.2.3).
//!
//! Following Mak & Lundstrom \[5\], "the queueing delay of task class i due
//! to task class j is directly proportional to their overlaps". From the
//! timeline we compute, per ordered class pair:
//!
//! ```text
//! o(i→j) = measure{ t : class i active ∧ class j active }
//!          ─────────────────────────────────────────────
//!          measure{ t : class i active }
//! ```
//!
//! i.e. the fraction of class i's active time during which class j is also
//! running — the probability a class-i task in service finds class-j work
//! competing with it. `α` collects same-job pairs (Figure 8's intra-job
//! factor), `β` cross-job pairs (inter-job).
//!
//! Class populations for the MVA are the time-average number of active
//! tasks of each class over that class's active period.

use crate::input::TaskClass;
use crate::timeline::Timeline;

/// A union of disjoint half-open intervals, kept sorted.
#[derive(Debug, Clone, Default)]
pub struct IntervalSet {
    ivs: Vec<(f64, f64)>,
}

impl IntervalSet {
    /// Build from possibly-overlapping intervals.
    pub fn from_intervals(mut raw: Vec<(f64, f64)>) -> IntervalSet {
        raw.retain(|&(s, e)| e > s);
        raw.sort_by(|a, b| a.0.total_cmp(&b.0));
        let mut ivs: Vec<(f64, f64)> = Vec::with_capacity(raw.len());
        for (s, e) in raw {
            match ivs.last_mut() {
                Some(last) if s <= last.1 => last.1 = last.1.max(e),
                _ => ivs.push((s, e)),
            }
        }
        IntervalSet { ivs }
    }

    /// Total measure.
    pub fn measure(&self) -> f64 {
        self.ivs.iter().map(|(s, e)| e - s).sum()
    }

    /// Measure of the intersection with another set (two-pointer sweep).
    pub fn intersection_measure(&self, other: &IntervalSet) -> f64 {
        let (mut i, mut j) = (0usize, 0usize);
        let mut acc = 0.0;
        while i < self.ivs.len() && j < other.ivs.len() {
            let (s1, e1) = self.ivs[i];
            let (s2, e2) = other.ivs[j];
            let lo = s1.max(s2);
            let hi = e1.min(e2);
            if hi > lo {
                acc += hi - lo;
            }
            if e1 < e2 {
                i += 1;
            } else {
                j += 1;
            }
        }
        acc
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.ivs.is_empty()
    }
}

/// Activity set of one (job, class).
pub fn activity(tl: &Timeline, job: u32, class: TaskClass) -> IntervalSet {
    IntervalSet::from_intervals(
        tl.segments
            .iter()
            .filter(|s| s.job == job && s.class == class)
            .map(|s| (s.start, s.end))
            .collect(),
    )
}

/// Time-average number of active class tasks over the class's active
/// period: `Σ durations / measure(active union)`. Zero for an idle class.
pub fn population(tl: &Timeline, job: u32, class: TaskClass) -> f64 {
    let act = activity(tl, job, class);
    let span = act.measure();
    if span <= 0.0 {
        return 0.0;
    }
    let busy: f64 = tl
        .segments
        .iter()
        .filter(|s| s.job == job && s.class == class)
        .map(|s| s.duration())
        .sum();
    busy / span
}

/// The overlap-factor matrices of a workload of `num_jobs` jobs.
#[derive(Debug, Clone)]
pub struct OverlapFactors {
    /// Intra-job factors `α[i][j]`, averaged over jobs.
    pub alpha: [[f64; 3]; 3],
    /// Inter-job factors `β[i][j]`, averaged over ordered job pairs
    /// (all-zero for a single job).
    pub beta: [[f64; 3]; 3],
}

/// Compute α and β from a timeline.
pub fn overlap_factors(tl: &Timeline, num_jobs: u32) -> OverlapFactors {
    // Pre-compute activities.
    let act: Vec<[IntervalSet; 3]> = (0..num_jobs)
        .map(|j| {
            [
                activity(tl, j, TaskClass::Map),
                activity(tl, j, TaskClass::ShuffleSort),
                activity(tl, j, TaskClass::Merge),
            ]
        })
        .collect();

    let factor = |a: &IntervalSet, b: &IntervalSet| -> f64 {
        let m = a.measure();
        if m <= 0.0 {
            0.0
        } else {
            a.intersection_measure(b) / m
        }
    };

    let mut alpha = [[0.0f64; 3]; 3];
    let mut alpha_n = [[0u32; 3]; 3];
    let mut beta = [[0.0f64; 3]; 3];
    let mut beta_n = [[0u32; 3]; 3];
    for a in 0..num_jobs as usize {
        for b in 0..num_jobs as usize {
            for i in 0..3 {
                if act[a][i].is_empty() {
                    continue;
                }
                for j in 0..3 {
                    let f = factor(&act[a][i], &act[b][j]);
                    if a == b {
                        alpha[i][j] += f;
                        alpha_n[i][j] += 1;
                    } else {
                        beta[i][j] += f;
                        beta_n[i][j] += 1;
                    }
                }
            }
        }
    }
    for i in 0..3 {
        for j in 0..3 {
            if alpha_n[i][j] > 0 {
                alpha[i][j] /= alpha_n[i][j] as f64;
            }
            if beta_n[i][j] > 0 {
                beta[i][j] /= beta_n[i][j] as f64;
            }
        }
    }
    OverlapFactors { alpha, beta }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timeline::{build_timeline, ShuffleSpec, TimelineConfig, TimelineJob};

    #[test]
    fn interval_set_merges() {
        let s = IntervalSet::from_intervals(vec![(0.0, 2.0), (1.0, 3.0), (5.0, 6.0)]);
        assert!((s.measure() - 4.0).abs() < 1e-12);
        let t = IntervalSet::from_intervals(vec![(2.5, 5.5)]);
        assert!((s.intersection_measure(&t) - 1.0).abs() < 1e-12);
        assert!((t.intersection_measure(&s) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_intervals_dropped() {
        let s = IntervalSet::from_intervals(vec![(1.0, 1.0), (2.0, 1.0)]);
        assert!(s.is_empty());
        assert_eq!(s.measure(), 0.0);
    }

    fn one_job_tl() -> Timeline {
        build_timeline(
            &TimelineConfig {
                capacities: vec![1; 3],
                slow_start: true,
            },
            &[TimelineJob {
                num_maps: 4,
                num_reduces: 1,
                map_duration: 10.0,
                merge_duration: 6.0,
                shuffle: ShuffleSpec::PerRemoteMap { sd: 2.0, base: 1.0 },
            }],
        )
    }

    #[test]
    fn populations_match_hand_computation() {
        let tl = one_job_tl();
        // Maps: 3 active on [0,10), 1 on [10,20): avg = (30+10)/20 = 2.
        assert!((population(&tl, 0, TaskClass::Map) - 2.0).abs() < 1e-12);
        // One reduce: populations exactly 1 while active.
        assert!((population(&tl, 0, TaskClass::ShuffleSort) - 1.0).abs() < 1e-12);
        assert!((population(&tl, 0, TaskClass::Merge) - 1.0).abs() < 1e-12);
        // Idle class of a map-only timeline is 0.
        let tl2 = build_timeline(
            &TimelineConfig::homogeneous(1, 1),
            &[TimelineJob {
                num_maps: 1,
                num_reduces: 0,
                map_duration: 1.0,
                merge_duration: 0.0,
                shuffle: ShuffleSpec::Fixed(0.0),
            }],
        );
        assert_eq!(population(&tl2, 0, TaskClass::Merge), 0.0);
    }

    #[test]
    fn intra_job_factors() {
        let tl = one_job_tl();
        let f = overlap_factors(&tl, 1);
        // Maps active [0,20); shuffle-sort [10,17): overlap 7.
        // α[map][ss] = 7/20; α[ss][map] = 7/7 = 1.
        assert!((f.alpha[0][1] - 0.35).abs() < 1e-9, "{}", f.alpha[0][1]);
        assert!((f.alpha[1][0] - 1.0).abs() < 1e-9);
        // Diagonals are 1 (a class always overlaps itself while active).
        for i in 0..2 {
            assert!((f.alpha[i][i] - 1.0).abs() < 1e-12);
        }
        // Merge [17,23) does not overlap maps [0,20)… it does: 3/6.
        assert!((f.alpha[2][0] - 0.5).abs() < 1e-9);
        // Single job → β all zero.
        assert_eq!(f.beta, [[0.0; 3]; 3]);
    }

    #[test]
    fn inter_job_factors_symmetric_jobs() {
        let cfg = TimelineConfig::homogeneous(2, 1);
        let job = TimelineJob {
            num_maps: 2,
            num_reduces: 0,
            map_duration: 5.0,
            merge_duration: 0.0,
            shuffle: ShuffleSpec::Fixed(0.0),
        };
        let tl = build_timeline(&cfg, &[job.clone(), job]);
        let f = overlap_factors(&tl, 2);
        // Jobs run serially (2 containers, 2 maps each): no map overlap.
        assert_eq!(f.beta[0][0], 0.0);
        assert!((f.alpha[0][0] - 1.0).abs() < 1e-12);
    }
}
