//! The ResourceRequest protocol between an ApplicationMaster and the RM.
//!
//! Requests are keyed by `(priority, location)` where location is a node, a
//! rack, or `*` (any). As in YARN, the `*` entry for a priority is the
//! authoritative total: satisfying a node-local request also decrements the
//! matching rack and `*` entries.
//!
//! Priorities follow the **paper's convention** (§3.3): a *larger* numeric
//! value is served first; the MapReduce AM uses 20 for map containers and
//! 10 for reduce containers.

use crate::resources::ResourceVector;
use hdfs_sim::{NodeId, RackId};
use std::collections::BTreeMap;
use std::fmt;

/// Request priority; larger values are served first (paper convention).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Priority(pub u32);

impl Priority {
    /// Default priority of map-task containers (RMContainerAllocator).
    pub const MAP: Priority = Priority(20);
    /// Default priority of reduce-task containers.
    pub const REDUCE: Priority = Priority(10);
}

/// Where the requested containers should land.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Location {
    /// A specific node.
    Node(NodeId),
    /// Any node in a rack.
    Rack(RackId),
    /// Anywhere (`*`).
    Any,
}

impl fmt::Display for Location {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Location::Node(n) => write!(f, "{n}"),
            Location::Rack(r) => write!(f, "{r}"),
            Location::Any => write!(f, "*"),
        }
    }
}

/// At which level an allocation matched the ask.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MatchLevel {
    /// Data-local: the container is on a requested node.
    NodeLocal,
    /// Rack-local.
    RackLocal,
    /// Off-switch (`*`).
    OffSwitch,
}

/// One row of the AM's ask — mirrors the paper's Table 1.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResourceRequest {
    /// Number of containers wanted at this key (absolute, not a delta).
    pub num_containers: u32,
    /// Request priority.
    pub priority: Priority,
    /// Container size.
    pub capability: ResourceVector,
    /// Placement constraint.
    pub location: Location,
    /// Whether the scheduler may fall back to a less specific location.
    pub relax_locality: bool,
}

/// The outstanding ask of one application, organized like YARN's
/// `AppSchedulingInfo`.
#[derive(Debug, Clone, Default)]
pub struct AskTable {
    /// (priority, location) → (capability, outstanding count).
    entries: BTreeMap<(Priority, Location), (ResourceVector, u32)>,
}

impl AskTable {
    /// Empty ask.
    pub fn new() -> Self {
        AskTable::default()
    }

    /// Apply an absolute request update (YARN semantics: later requests for
    /// the same key replace the count).
    pub fn update(&mut self, req: &ResourceRequest) {
        if req.num_containers == 0 {
            self.entries.remove(&(req.priority, req.location));
        } else {
            self.entries.insert(
                (req.priority, req.location),
                (req.capability, req.num_containers),
            );
        }
    }

    /// Outstanding containers at the authoritative (`*`) entry for a
    /// priority; 0 if absent.
    pub fn outstanding(&self, priority: Priority) -> u32 {
        self.entries
            .get(&(priority, Location::Any))
            .map(|&(_, n)| n)
            .unwrap_or(0)
    }

    /// Pending count at an exact key.
    pub fn count_at(&self, priority: Priority, location: Location) -> u32 {
        self.entries
            .get(&(priority, location))
            .map(|&(_, n)| n)
            .unwrap_or(0)
    }

    /// Capability registered for a priority (from the `*` entry, falling
    /// back to any entry of that priority).
    pub fn capability(&self, priority: Priority) -> Option<ResourceVector> {
        if let Some(&(cap, _)) = self.entries.get(&(priority, Location::Any)) {
            return Some(cap);
        }
        self.entries
            .iter()
            .find(|((p, _), _)| *p == priority)
            .map(|(_, &(cap, _))| cap)
    }

    /// Priorities with a positive authoritative count, highest first
    /// (paper: higher numeric priority served first).
    pub fn active_priorities(&self) -> Vec<Priority> {
        let mut ps: Vec<Priority> = self
            .entries
            .iter()
            .filter(|((_, loc), &(_, n))| *loc == Location::Any && n > 0)
            .map(|((p, _), _)| *p)
            .collect();
        ps.sort_unstable_by(|a, b| b.cmp(a));
        ps
    }

    /// Whether a node-local entry with pending count exists.
    pub fn wants_node(&self, priority: Priority, node: NodeId) -> bool {
        self.count_at(priority, Location::Node(node)) > 0
    }

    /// Whether a rack-local entry with pending count exists.
    pub fn wants_rack(&self, priority: Priority, rack: RackId) -> bool {
        self.count_at(priority, Location::Rack(rack)) > 0
    }

    /// Record that one container was allocated at `level` on
    /// `(node, rack)`: decrements the matched entry and every less-specific
    /// one (YARN's `allocateNodeLocal` cascade).
    pub fn on_allocated(
        &mut self,
        priority: Priority,
        node: NodeId,
        rack: RackId,
        level: MatchLevel,
    ) {
        let mut dec = |loc: Location| {
            if let Some((_, n)) = self.entries.get_mut(&(priority, loc)) {
                *n = n.saturating_sub(1);
                if *n == 0 {
                    self.entries.remove(&(priority, loc));
                }
            }
        };
        match level {
            MatchLevel::NodeLocal => {
                dec(Location::Node(node));
                dec(Location::Rack(rack));
                dec(Location::Any);
            }
            MatchLevel::RackLocal => {
                dec(Location::Rack(rack));
                dec(Location::Any);
            }
            MatchLevel::OffSwitch => {
                dec(Location::Any);
            }
        }
    }

    /// All rows, for inspection and Table-1-style rendering.
    pub fn rows(&self) -> impl Iterator<Item = (Priority, Location, ResourceVector, u32)> + '_ {
        self.entries
            .iter()
            .map(|(&(p, loc), &(cap, n))| (p, loc, cap, n))
    }

    /// Whether anything is outstanding.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Render an ask as the paper's Table 1 ("ResourceRequest Object").
///
/// `task_type` labels rows by priority (map for [`Priority::MAP`], reduce
/// for [`Priority::REDUCE`]).
pub fn render_table1(ask: &AskTable) -> String {
    let mut out = String::new();
    out.push_str(
        "| # containers | Priority | Size | Locality | Task type |\n\
         |---|---|---|---|---|\n",
    );
    // Paper's Table 1 lists map rows (node-level) first, then reduce (*).
    let mut rows: Vec<_> = ask.rows().collect();
    rows.sort_by(|a, b| b.0.cmp(&a.0).then_with(|| a.1.cmp(&b.1)));
    for (p, loc, cap, n) in rows {
        // The authoritative `*` row of the map priority duplicates the
        // node rows; the paper omits it, so we do too for map priority.
        if p == Priority::MAP && loc == Location::Any {
            continue;
        }
        let kind = if p >= Priority::MAP { "map" } else { "reduce" };
        out.push_str(&format!("| {n} | {} | {cap} | {loc} | {kind} |\n", p.0));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cap() -> ResourceVector {
        ResourceVector::new(1024, 1)
    }

    #[test]
    fn update_and_outstanding() {
        let mut ask = AskTable::new();
        ask.update(&ResourceRequest {
            num_containers: 4,
            priority: Priority::MAP,
            capability: cap(),
            location: Location::Any,
            relax_locality: true,
        });
        assert_eq!(ask.outstanding(Priority::MAP), 4);
        assert_eq!(ask.outstanding(Priority::REDUCE), 0);
        // Absolute update semantics.
        ask.update(&ResourceRequest {
            num_containers: 2,
            priority: Priority::MAP,
            capability: cap(),
            location: Location::Any,
            relax_locality: true,
        });
        assert_eq!(ask.outstanding(Priority::MAP), 2);
    }

    #[test]
    fn node_local_allocation_cascades() {
        let mut ask = AskTable::new();
        let n1 = NodeId(0);
        let r0 = RackId(0);
        for (loc, n) in [
            (Location::Node(n1), 2),
            (Location::Rack(r0), 2),
            (Location::Any, 2),
        ] {
            ask.update(&ResourceRequest {
                num_containers: n,
                priority: Priority::MAP,
                capability: cap(),
                location: loc,
                relax_locality: true,
            });
        }
        ask.on_allocated(Priority::MAP, n1, r0, MatchLevel::NodeLocal);
        assert_eq!(ask.count_at(Priority::MAP, Location::Node(n1)), 1);
        assert_eq!(ask.count_at(Priority::MAP, Location::Rack(r0)), 1);
        assert_eq!(ask.outstanding(Priority::MAP), 1);
        // Off-switch match only decrements `*`.
        ask.on_allocated(Priority::MAP, NodeId(9), RackId(9), MatchLevel::OffSwitch);
        assert_eq!(ask.count_at(Priority::MAP, Location::Node(n1)), 1);
        assert_eq!(ask.outstanding(Priority::MAP), 0);
    }

    #[test]
    fn priorities_served_highest_first() {
        let mut ask = AskTable::new();
        for p in [Priority::REDUCE, Priority::MAP] {
            ask.update(&ResourceRequest {
                num_containers: 1,
                priority: p,
                capability: cap(),
                location: Location::Any,
                relax_locality: true,
            });
        }
        assert_eq!(
            ask.active_priorities(),
            vec![Priority::MAP, Priority::REDUCE]
        );
    }

    #[test]
    fn table1_running_example() {
        // The paper's running example (§3.1): n=3 nodes, m=4 maps (2 on n1,
        // 2 on n2), r=1 reduce anywhere.
        let mut ask = AskTable::new();
        let x = ResourceVector::new(1024, 1);
        for (loc, n, p) in [
            (Location::Node(NodeId(0)), 2, Priority::MAP),
            (Location::Node(NodeId(1)), 2, Priority::MAP),
            (Location::Any, 4, Priority::MAP),
            (Location::Any, 1, Priority::REDUCE),
        ] {
            ask.update(&ResourceRequest {
                num_containers: n,
                priority: p,
                capability: x,
                location: loc,
                relax_locality: true,
            });
        }
        let rendered = render_table1(&ask);
        assert!(rendered.contains("| 2 | 20 | <1024MB, 1vc> | n0 | map |"));
        assert!(rendered.contains("| 2 | 20 | <1024MB, 1vc> | n1 | map |"));
        assert!(rendered.contains("| 1 | 10 | <1024MB, 1vc> | * | reduce |"));
        // The map `*` row is omitted like in the paper.
        assert!(!rendered.contains("| 4 | 20"));
    }
}
