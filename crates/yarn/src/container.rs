//! Containers and their lifecycle.
//!
//! The paper's §3.4 vocabulary for request/task states — *pending* (not yet
//! sent to the RM), *scheduled* (sent, not assigned), *assigned* (bound to
//! a container), *completed* — lives in the MapReduce AM
//! (`mapreduce-sim`); this module models the container itself, which on the
//! RM side moves NEW → ALLOCATED → ACQUIRED → RUNNING → COMPLETED.

use crate::request::Priority;
use crate::resources::ResourceVector;
use hdfs_sim::NodeId;
use std::fmt;

/// Globally unique container identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ContainerId(pub u64);

impl fmt::Display for ContainerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "container_{:06}", self.0)
    }
}

/// RM-side container states.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ContainerState {
    /// Created by the scheduler, not yet handed to the AM.
    Allocated,
    /// Pulled by the AM in an allocate response.
    Acquired,
    /// Launched on the NodeManager.
    Running,
    /// Finished (released, completed, or killed).
    Completed,
}

impl ContainerState {
    /// Whether `self → next` is a legal lifecycle transition.
    pub fn can_transition_to(self, next: ContainerState) -> bool {
        use ContainerState::*;
        matches!(
            (self, next),
            (Allocated, Acquired)
                | (Acquired, Running)
                | (Allocated, Completed) // released before acquisition
                | (Acquired, Completed)  // released before launch
                | (Running, Completed)
        )
    }
}

/// A logical bundle of resources bound to a particular node (§3.2).
#[derive(Debug, Clone)]
pub struct Container {
    /// Unique id.
    pub id: ContainerId,
    /// Node the container is bound to.
    pub node: NodeId,
    /// Size of the bundle.
    pub resource: ResourceVector,
    /// Priority of the request this container satisfied.
    pub priority: Priority,
    /// Current lifecycle state.
    pub state: ContainerState,
}

impl Container {
    /// Advance the lifecycle; panics on an illegal transition (these are
    /// simulator bugs, not recoverable conditions).
    pub fn transition(&mut self, next: ContainerState) {
        assert!(
            self.state.can_transition_to(next),
            "illegal container transition {:?} -> {:?} for {}",
            self.state,
            next,
            self.id
        );
        self.state = next;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk() -> Container {
        Container {
            id: ContainerId(1),
            node: NodeId(0),
            resource: ResourceVector::new(1024, 1),
            priority: Priority::MAP,
            state: ContainerState::Allocated,
        }
    }

    #[test]
    fn happy_path() {
        let mut c = mk();
        c.transition(ContainerState::Acquired);
        c.transition(ContainerState::Running);
        c.transition(ContainerState::Completed);
        assert_eq!(c.state, ContainerState::Completed);
    }

    #[test]
    fn early_release_paths() {
        let mut c = mk();
        c.transition(ContainerState::Completed);
        assert_eq!(c.state, ContainerState::Completed);
        let mut c2 = mk();
        c2.transition(ContainerState::Acquired);
        c2.transition(ContainerState::Completed);
        assert_eq!(c2.state, ContainerState::Completed);
    }

    #[test]
    #[should_panic(expected = "illegal container transition")]
    fn cannot_resurrect() {
        let mut c = mk();
        c.transition(ContainerState::Completed);
        c.transition(ContainerState::Running);
    }

    #[test]
    #[should_panic(expected = "illegal container transition")]
    fn cannot_skip_acquired() {
        let mut c = mk();
        c.transition(ContainerState::Running);
    }
}
