//! NodeManager-side bookkeeping: per-node capacity and live containers.

use crate::container::ContainerId;
use crate::resources::ResourceVector;
use hdfs_sim::{NodeId, Topology};

/// Scheduler-visible state of one node.
#[derive(Debug, Clone)]
pub struct NodeState {
    /// The node this tracks.
    pub id: NodeId,
    /// Total capacity advertised by the NodeManager.
    pub capacity: ResourceVector,
    /// Resources currently allocated to containers.
    pub allocated: ResourceVector,
    /// Live containers on this node.
    pub containers: Vec<ContainerId>,
}

impl NodeState {
    /// A node with nothing allocated.
    pub fn new(id: NodeId, capacity: ResourceVector) -> Self {
        NodeState {
            id,
            capacity,
            allocated: ResourceVector::ZERO,
            containers: Vec::new(),
        }
    }

    /// Unallocated headroom.
    pub fn available(&self) -> ResourceVector {
        self.capacity.saturating_sub(&self.allocated)
    }

    /// Whether a container of `size` fits right now.
    pub fn can_fit(&self, size: &ResourceVector) -> bool {
        size.fits_in(&self.available())
    }

    /// Occupancy rate in \[0, 1\]: dominant share of allocated over capacity.
    /// The paper assigns containers "to the nodes with the lowest value"
    /// of this rate (§4.2.2).
    pub fn occupancy_rate(&self) -> f64 {
        self.allocated.dominant_share(&self.capacity)
    }

    /// Reserve resources for a container. Panics if it does not fit
    /// (callers must check `can_fit`).
    pub fn allocate(&mut self, id: ContainerId, size: ResourceVector) {
        assert!(
            self.can_fit(&size),
            "container {id} does not fit on {}",
            self.id
        );
        self.allocated += size;
        self.containers.push(id);
    }

    /// Release a container's resources. Panics if the container is unknown.
    pub fn release(&mut self, id: ContainerId, size: ResourceVector) {
        let idx = self
            .containers
            .iter()
            .position(|&c| c == id)
            .unwrap_or_else(|| panic!("releasing unknown container {id} on {}", self.id));
        self.containers.swap_remove(idx);
        self.allocated -= size;
    }
}

/// Scheduler's view of every node.
#[derive(Debug, Clone)]
pub struct ClusterState {
    /// Physical topology (shared with HDFS).
    pub topology: Topology,
    nodes: Vec<NodeState>,
}

impl ClusterState {
    /// A cluster where every node advertises `capacity`.
    pub fn homogeneous(topology: Topology, capacity: ResourceVector) -> Self {
        let nodes = topology
            .nodes()
            .map(|n| NodeState::new(n, capacity))
            .collect();
        ClusterState { topology, nodes }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Immutable node state.
    pub fn node(&self, id: NodeId) -> &NodeState {
        &self.nodes[id.0 as usize]
    }

    /// Mutable node state.
    pub fn node_mut(&mut self, id: NodeId) -> &mut NodeState {
        &mut self.nodes[id.0 as usize]
    }

    /// All nodes.
    pub fn nodes(&self) -> &[NodeState] {
        &self.nodes
    }

    /// Aggregate free resources.
    pub fn total_available(&self) -> ResourceVector {
        self.nodes
            .iter()
            .fold(ResourceVector::ZERO, |acc, n| acc + n.available())
    }

    /// Aggregate capacity.
    pub fn total_capacity(&self) -> ResourceVector {
        self.nodes
            .iter()
            .fold(ResourceVector::ZERO, |acc, n| acc + n.capacity)
    }

    /// Nodes able to host `size`, ordered by (occupancy rate, id) — the
    /// paper's "highest remaining capacity" tie-broken deterministically.
    pub fn candidates_by_occupancy(&self, size: &ResourceVector) -> Vec<NodeId> {
        let mut fit: Vec<&NodeState> = self.nodes.iter().filter(|n| n.can_fit(size)).collect();
        fit.sort_by(|a, b| {
            a.occupancy_rate()
                .total_cmp(&b.occupancy_rate())
                .then_with(|| a.id.cmp(&b.id))
        });
        fit.into_iter().map(|n| n.id).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::container::ContainerId;

    #[test]
    fn allocate_release_roundtrip() {
        let mut n = NodeState::new(NodeId(0), ResourceVector::new(4096, 4));
        let c = ResourceVector::new(1024, 1);
        n.allocate(ContainerId(1), c);
        n.allocate(ContainerId(2), c);
        assert_eq!(n.available(), ResourceVector::new(2048, 2));
        assert!((n.occupancy_rate() - 0.5).abs() < 1e-12);
        n.release(ContainerId(1), c);
        assert_eq!(n.available(), ResourceVector::new(3072, 3));
        assert_eq!(n.containers, vec![ContainerId(2)]);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn overallocation_panics() {
        let mut n = NodeState::new(NodeId(0), ResourceVector::new(1024, 1));
        n.allocate(ContainerId(1), ResourceVector::new(1024, 1));
        n.allocate(ContainerId(2), ResourceVector::new(1, 1));
    }

    #[test]
    fn occupancy_ordering() {
        let topo = Topology::single_rack(3);
        let mut cluster = ClusterState::homogeneous(topo, ResourceVector::new(4096, 4));
        let c = ResourceVector::new(1024, 1);
        cluster.node_mut(NodeId(0)).allocate(ContainerId(1), c);
        cluster.node_mut(NodeId(0)).allocate(ContainerId(2), c);
        cluster.node_mut(NodeId(1)).allocate(ContainerId(3), c);
        let order = cluster.candidates_by_occupancy(&c);
        assert_eq!(order, vec![NodeId(2), NodeId(1), NodeId(0)]);
    }

    #[test]
    fn candidates_exclude_full_nodes() {
        let topo = Topology::single_rack(2);
        let mut cluster = ClusterState::homogeneous(topo, ResourceVector::new(1024, 1));
        cluster
            .node_mut(NodeId(0))
            .allocate(ContainerId(1), ResourceVector::new(1024, 1));
        let order = cluster.candidates_by_occupancy(&ResourceVector::new(1024, 1));
        assert_eq!(order, vec![NodeId(1)]);
    }
}
