//! Resource vectors: the `<memory, vcores>` pairs YARN trades in.

use std::fmt;
use std::ops::{Add, AddAssign, Sub, SubAssign};

/// A bundle of cluster resources (memory in MB, virtual cores).
///
/// YARN 2.x schedules on these two dimensions; containers are allocated as
/// indivisible `ResourceVector`s bound to a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct ResourceVector {
    /// Memory in mebibytes.
    pub memory_mb: u64,
    /// Virtual cores.
    pub vcores: u32,
}

impl ResourceVector {
    /// The zero resource.
    pub const ZERO: ResourceVector = ResourceVector {
        memory_mb: 0,
        vcores: 0,
    };

    /// Construct from components.
    pub const fn new(memory_mb: u64, vcores: u32) -> Self {
        ResourceVector { memory_mb, vcores }
    }

    /// Whether `self` fits inside `other` component-wise.
    pub fn fits_in(&self, other: &ResourceVector) -> bool {
        self.memory_mb <= other.memory_mb && self.vcores <= other.vcores
    }

    /// Whether any component is zero (an unusable allocation).
    pub fn is_degenerate(&self) -> bool {
        self.memory_mb == 0 || self.vcores == 0
    }

    /// How many copies of `unit` fit in `self` (the paper's
    /// `pMaxMapsPerNode = ⌊TotalNodeCapacity / SizeOfContainerForMapTask⌋`).
    pub fn count_fitting(&self, unit: &ResourceVector) -> u32 {
        if unit.is_degenerate() {
            return 0;
        }
        let by_mem = self.memory_mb / unit.memory_mb;
        let by_cpu = self.vcores / unit.vcores;
        by_mem.min(by_cpu as u64) as u32
    }

    /// Dominant share of `self` relative to a total capacity, i.e.
    /// `max(mem/mem_total, vcores/vcores_total)` — used for occupancy-rate
    /// ordering of nodes.
    pub fn dominant_share(&self, total: &ResourceVector) -> f64 {
        let mem = if total.memory_mb == 0 {
            0.0
        } else {
            self.memory_mb as f64 / total.memory_mb as f64
        };
        let cpu = if total.vcores == 0 {
            0.0
        } else {
            self.vcores as f64 / total.vcores as f64
        };
        mem.max(cpu)
    }

    /// Component-wise saturating subtraction.
    pub fn saturating_sub(&self, other: &ResourceVector) -> ResourceVector {
        ResourceVector {
            memory_mb: self.memory_mb.saturating_sub(other.memory_mb),
            vcores: self.vcores.saturating_sub(other.vcores),
        }
    }
}

impl Add for ResourceVector {
    type Output = ResourceVector;
    fn add(self, rhs: ResourceVector) -> ResourceVector {
        ResourceVector {
            memory_mb: self.memory_mb + rhs.memory_mb,
            vcores: self.vcores + rhs.vcores,
        }
    }
}

impl AddAssign for ResourceVector {
    fn add_assign(&mut self, rhs: ResourceVector) {
        *self = *self + rhs;
    }
}

impl Sub for ResourceVector {
    type Output = ResourceVector;
    fn sub(self, rhs: ResourceVector) -> ResourceVector {
        ResourceVector {
            memory_mb: self
                .memory_mb
                .checked_sub(rhs.memory_mb)
                .expect("memory underflow"),
            vcores: self
                .vcores
                .checked_sub(rhs.vcores)
                .expect("vcores underflow"),
        }
    }
}

impl SubAssign for ResourceVector {
    fn sub_assign(&mut self, rhs: ResourceVector) {
        *self = *self - rhs;
    }
}

impl fmt::Display for ResourceVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<{}MB, {}vc>", self.memory_mb, self.vcores)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fits_and_count() {
        let node = ResourceVector::new(8192, 8);
        let c = ResourceVector::new(1024, 1);
        assert!(c.fits_in(&node));
        assert!(!node.fits_in(&c));
        assert_eq!(node.count_fitting(&c), 8);
        let big = ResourceVector::new(3072, 1);
        assert_eq!(node.count_fitting(&big), 2); // memory-bound
        let cpu_heavy = ResourceVector::new(512, 3);
        assert_eq!(node.count_fitting(&cpu_heavy), 2); // cpu-bound
    }

    #[test]
    fn arithmetic() {
        let a = ResourceVector::new(2048, 2);
        let b = ResourceVector::new(1024, 1);
        assert_eq!(a + b, ResourceVector::new(3072, 3));
        assert_eq!(a - b, b);
        assert_eq!(b.saturating_sub(&a), ResourceVector::ZERO);
        let mut c = a;
        c += b;
        c -= b;
        assert_eq!(c, a);
    }

    #[test]
    #[should_panic(expected = "memory underflow")]
    fn sub_underflow_panics() {
        let _ = ResourceVector::new(1, 1) - ResourceVector::new(2, 1);
    }

    #[test]
    fn dominant_share() {
        let total = ResourceVector::new(1000, 10);
        let used = ResourceVector::new(500, 8);
        assert!((used.dominant_share(&total) - 0.8).abs() < 1e-12);
    }

    #[test]
    fn degenerate() {
        assert!(ResourceVector::new(0, 4).is_degenerate());
        assert!(!ResourceVector::new(1, 1).is_degenerate());
        assert_eq!(
            ResourceVector::new(100, 1).count_fitting(&ResourceVector::ZERO),
            0
        );
    }
}
