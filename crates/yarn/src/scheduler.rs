//! Schedulers: FIFO and the Capacity scheduler.
//!
//! Both serve applications' [`AskTable`]s against [`ClusterState`]
//! capacity, honoring the paper's rules (§4.2.2): higher numeric priority
//! first (maps before reduces), node-local before rack-local before
//! off-switch, and — among fitting nodes — the node with the lowest
//! occupancy rate.
//!
//! The Capacity scheduler with a single root queue degenerates to FIFO
//! order among applications, which is the configuration the paper assumes
//! ("we do not have any hierarchical queues and we have only one root
//! queue. Thus, resource allocation among applications will be in the FIFO
//! order"). Both schedulers are work-conserving: an application that cannot
//! be served does not block capacity that a later application can use.

use crate::container::{Container, ContainerId, ContainerState};
use crate::node::ClusterState;
use crate::request::{AskTable, MatchLevel, Priority};
use crate::resources::ResourceVector;
use crate::rm::AppId;

/// Scheduler-side state of one registered application.
#[derive(Debug, Clone)]
pub struct AppSchedulingState {
    /// The application.
    pub app: AppId,
    /// Index into the scheduler's queue list.
    pub queue: usize,
    /// Outstanding ask.
    pub ask: AskTable,
    /// Resources currently held by this application's live containers.
    pub used: ResourceVector,
    /// Whether the app has unregistered (no further allocation).
    pub finished: bool,
}

/// One granted container, not yet picked up by its AM.
#[derive(Debug, Clone)]
pub struct Allocation {
    /// Receiving application.
    pub app: AppId,
    /// The container (state [`ContainerState::Allocated`]).
    pub container: Container,
    /// Locality level that matched.
    pub level: MatchLevel,
}

/// Mints container ids.
#[derive(Debug, Default)]
pub struct ContainerIdGen(u64);

impl ContainerIdGen {
    /// Next unique id.
    pub fn next_id(&mut self) -> ContainerId {
        let id = ContainerId(self.0);
        self.0 += 1;
        id
    }
}

/// A container-granting policy.
pub trait Scheduler {
    /// Grant as many containers as capacity and asks allow. Mutates node
    /// allocations and asks in place.
    fn assign(
        &mut self,
        cluster: &mut ClusterState,
        apps: &mut [AppSchedulingState],
        ids: &mut ContainerIdGen,
    ) -> Vec<Allocation>;
}

/// Try to serve one container of priority `p` for `app`; returns the
/// allocation if a node fit.
fn assign_one(
    cluster: &mut ClusterState,
    app: &mut AppSchedulingState,
    p: Priority,
    ids: &mut ContainerIdGen,
) -> Option<Allocation> {
    let cap = app.ask.capability(p)?;

    // Node-local: requested nodes that fit, lowest occupancy first.
    let mut chosen: Option<(hdfs_sim::NodeId, MatchLevel)> = None;
    for n in cluster.candidates_by_occupancy(&cap) {
        if app.ask.wants_node(p, n) {
            chosen = Some((n, MatchLevel::NodeLocal));
            break;
        }
    }
    // Rack-local fallback.
    if chosen.is_none() {
        for n in cluster.candidates_by_occupancy(&cap) {
            if app.ask.wants_rack(p, cluster.topology.rack_of(n)) {
                chosen = Some((n, MatchLevel::RackLocal));
                break;
            }
        }
    }
    // Off-switch: any fitting node, lowest occupancy.
    if chosen.is_none() {
        chosen = cluster
            .candidates_by_occupancy(&cap)
            .first()
            .map(|&n| (n, MatchLevel::OffSwitch));
    }
    let (node, level) = chosen?;

    let id = ids.next_id();
    cluster.node_mut(node).allocate(id, cap);
    app.ask
        .on_allocated(p, node, cluster.topology.rack_of(node), level);
    app.used += cap;
    Some(Allocation {
        app: app.app,
        container: Container {
            id,
            node,
            resource: cap,
            priority: p,
            state: ContainerState::Allocated,
        },
        level,
    })
}

/// Serve one app fully (all priorities, highest first), appending to `out`.
fn drain_app(
    cluster: &mut ClusterState,
    app: &mut AppSchedulingState,
    ids: &mut ContainerIdGen,
    out: &mut Vec<Allocation>,
) {
    if app.finished {
        return;
    }
    for p in app.ask.active_priorities() {
        while app.ask.outstanding(p) > 0 {
            match assign_one(cluster, app, p, ids) {
                Some(a) => out.push(a),
                None => break, // no node fits this capability now
            }
        }
    }
}

/// Strict submission-order scheduler.
#[derive(Debug, Default)]
pub struct FifoScheduler;

impl Scheduler for FifoScheduler {
    fn assign(
        &mut self,
        cluster: &mut ClusterState,
        apps: &mut [AppSchedulingState],
        ids: &mut ContainerIdGen,
    ) -> Vec<Allocation> {
        let mut out = Vec::new();
        for app in apps.iter_mut() {
            drain_app(cluster, app, ids, &mut out);
        }
        out
    }
}

/// One leaf queue of the Capacity scheduler.
#[derive(Debug, Clone)]
pub struct QueueConfig {
    /// Human-readable name.
    pub name: String,
    /// Guaranteed fraction of cluster capacity, in (0, 1].
    pub capacity: f64,
}

/// The Hadoop Capacity scheduler restricted to a flat list of leaf queues
/// under the root (hierarchies flatten to this for scheduling purposes).
#[derive(Debug)]
pub struct CapacityScheduler {
    queues: Vec<QueueConfig>,
}

impl CapacityScheduler {
    /// The paper's default: a single root queue holding every application.
    pub fn single_queue() -> Self {
        CapacityScheduler {
            queues: vec![QueueConfig {
                name: "root".to_string(),
                capacity: 1.0,
            }],
        }
    }

    /// Multiple leaf queues; capacities should sum to ≈ 1.
    pub fn with_queues(queues: Vec<QueueConfig>) -> Self {
        assert!(!queues.is_empty());
        let total: f64 = queues.iter().map(|q| q.capacity).sum();
        assert!(
            (total - 1.0).abs() < 1e-6,
            "queue capacities must sum to 1, got {total}"
        );
        CapacityScheduler { queues }
    }

    /// Number of queues.
    pub fn num_queues(&self) -> usize {
        self.queues.len()
    }

    /// Queue configuration by index.
    pub fn queue(&self, idx: usize) -> &QueueConfig {
        &self.queues[idx]
    }
}

impl Scheduler for CapacityScheduler {
    fn assign(
        &mut self,
        cluster: &mut ClusterState,
        apps: &mut [AppSchedulingState],
        ids: &mut ContainerIdGen,
    ) -> Vec<Allocation> {
        let mut out = Vec::new();
        let total = cluster.total_capacity();
        loop {
            // Queue usage = sum of member apps' holdings (dominant share).
            let mut usage = vec![ResourceVector::ZERO; self.queues.len()];
            for a in apps.iter() {
                usage[a.queue] += a.used;
            }
            // Serve the most under-served queue first; among its apps, FIFO.
            let mut order: Vec<usize> = (0..self.queues.len()).collect();
            order.sort_by(|&a, &b| {
                let ra = usage[a].dominant_share(&total) / self.queues[a].capacity;
                let rb = usage[b].dominant_share(&total) / self.queues[b].capacity;
                ra.total_cmp(&rb).then(a.cmp(&b))
            });
            let mut assigned = false;
            'queues: for q in order {
                for app in apps.iter_mut().filter(|a| a.queue == q && !a.finished) {
                    for p in app.ask.active_priorities() {
                        if app.ask.outstanding(p) > 0 {
                            if let Some(a) = assign_one(cluster, app, p, ids) {
                                out.push(a);
                                assigned = true;
                                break 'queues; // re-evaluate queue fairness
                            }
                        }
                    }
                }
            }
            if !assigned {
                break;
            }
        }
        out
    }
}

/// Max–min fair scheduler: containers go one at a time to the running
/// application currently holding the smallest share of the cluster
/// (dominant-resource ordering, submission order as tie-break). This is
/// the Fair-Scheduler-like behaviour many production clusters configure;
/// the paper's model assumes FIFO instead, and comparing the two explains
/// the multi-job deviation discussed in EXPERIMENTS.md.
#[derive(Debug, Default)]
pub struct FairScheduler;

impl Scheduler for FairScheduler {
    fn assign(
        &mut self,
        cluster: &mut ClusterState,
        apps: &mut [AppSchedulingState],
        ids: &mut ContainerIdGen,
    ) -> Vec<Allocation> {
        let mut out = Vec::new();
        let total = cluster.total_capacity();
        loop {
            let mut order: Vec<usize> = (0..apps.len())
                .filter(|&i| !apps[i].finished && !apps[i].ask.is_empty())
                .collect();
            order.sort_by(|&a, &b| {
                apps[a]
                    .used
                    .dominant_share(&total)
                    .total_cmp(&apps[b].used.dominant_share(&total))
                    .then(a.cmp(&b))
            });
            let mut assigned = false;
            'apps: for i in order {
                let app = &mut apps[i];
                for p in app.ask.active_priorities() {
                    if app.ask.outstanding(p) > 0 {
                        if let Some(a) = assign_one(cluster, app, p, ids) {
                            out.push(a);
                            assigned = true;
                            break 'apps;
                        }
                    }
                }
            }
            if !assigned {
                break;
            }
        }
        out
    }
}

/// Runtime-selectable scheduler, for simulator configuration.
#[derive(Debug)]
pub enum AnyScheduler {
    /// Capacity scheduler (single root queue = FIFO; the paper's default).
    Capacity(CapacityScheduler),
    /// Max–min fair across applications.
    Fair(FairScheduler),
}

impl Scheduler for AnyScheduler {
    fn assign(
        &mut self,
        cluster: &mut ClusterState,
        apps: &mut [AppSchedulingState],
        ids: &mut ContainerIdGen,
    ) -> Vec<Allocation> {
        match self {
            AnyScheduler::Capacity(s) => s.assign(cluster, apps, ids),
            AnyScheduler::Fair(s) => s.assign(cluster, apps, ids),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::{Location, ResourceRequest};
    use hdfs_sim::{NodeId, Topology};

    fn cluster(nodes: usize, per_node: u32) -> ClusterState {
        ClusterState::homogeneous(
            Topology::single_rack(nodes),
            ResourceVector::new(1024 * per_node as u64, per_node),
        )
    }

    fn app(id: u32) -> AppSchedulingState {
        AppSchedulingState {
            app: AppId(id),
            queue: 0,
            ask: AskTable::new(),
            used: ResourceVector::ZERO,
            finished: false,
        }
    }

    fn ask_any(a: &mut AppSchedulingState, p: Priority, n: u32) {
        a.ask.update(&ResourceRequest {
            num_containers: n,
            priority: p,
            capability: ResourceVector::new(1024, 1),
            location: Location::Any,
            relax_locality: true,
        });
    }

    #[test]
    fn fifo_serves_maps_before_reduces() {
        let mut c = cluster(1, 3);
        let mut apps = vec![app(0)];
        ask_any(&mut apps[0], Priority::REDUCE, 2);
        ask_any(&mut apps[0], Priority::MAP, 2);
        let allocs = FifoScheduler.assign(&mut c, &mut apps, &mut ContainerIdGen::default());
        assert_eq!(allocs.len(), 3);
        assert_eq!(allocs[0].container.priority, Priority::MAP);
        assert_eq!(allocs[1].container.priority, Priority::MAP);
        assert_eq!(allocs[2].container.priority, Priority::REDUCE);
        assert_eq!(apps[0].ask.outstanding(Priority::REDUCE), 1);
    }

    #[test]
    fn node_local_preferred() {
        let mut c = cluster(3, 4);
        let mut apps = vec![app(0)];
        // Ask node-local on n2 plus the authoritative any row.
        apps[0].ask.update(&ResourceRequest {
            num_containers: 1,
            priority: Priority::MAP,
            capability: ResourceVector::new(1024, 1),
            location: Location::Node(NodeId(2)),
            relax_locality: true,
        });
        ask_any(&mut apps[0], Priority::MAP, 1);
        let allocs = FifoScheduler.assign(&mut c, &mut apps, &mut ContainerIdGen::default());
        assert_eq!(allocs.len(), 1);
        assert_eq!(allocs[0].container.node, NodeId(2));
        assert_eq!(allocs[0].level, MatchLevel::NodeLocal);
    }

    #[test]
    fn off_switch_picks_lowest_occupancy() {
        let mut c = cluster(2, 4);
        // Pre-load node 0.
        c.node_mut(NodeId(0))
            .allocate(ContainerId(99), ResourceVector::new(2048, 2));
        let mut apps = vec![app(0)];
        ask_any(&mut apps[0], Priority::MAP, 1);
        let allocs = FifoScheduler.assign(&mut c, &mut apps, &mut ContainerIdGen::default());
        assert_eq!(allocs[0].container.node, NodeId(1));
        assert_eq!(allocs[0].level, MatchLevel::OffSwitch);
    }

    #[test]
    fn fifo_is_work_conserving_across_apps() {
        let mut c = cluster(1, 2);
        let mut apps = vec![app(0), app(1)];
        ask_any(&mut apps[0], Priority::MAP, 5); // only 2 fit
        ask_any(&mut apps[1], Priority::MAP, 1); // starved: app0 took all
        let allocs = FifoScheduler.assign(&mut c, &mut apps, &mut ContainerIdGen::default());
        assert_eq!(allocs.len(), 2);
        assert!(allocs.iter().all(|a| a.app == AppId(0)));
        // After app0 releases, app1 can be served — here we simply verify
        // app0 kept its pending ask.
        assert_eq!(apps[0].ask.outstanding(Priority::MAP), 3);
        assert_eq!(apps[1].ask.outstanding(Priority::MAP), 1);
    }

    #[test]
    fn capacity_single_queue_matches_fifo() {
        let mut c1 = cluster(2, 2);
        let mut c2 = cluster(2, 2);
        let mk = || {
            let mut a0 = app(0);
            let mut a1 = app(1);
            ask_any(&mut a0, Priority::MAP, 3);
            ask_any(&mut a1, Priority::MAP, 3);
            vec![a0, a1]
        };
        let mut apps1 = mk();
        let mut apps2 = mk();
        let f = FifoScheduler.assign(&mut c1, &mut apps1, &mut ContainerIdGen::default());
        let mut cs = CapacityScheduler::single_queue();
        let c = cs.assign(&mut c2, &mut apps2, &mut ContainerIdGen::default());
        let key = |allocs: &[Allocation]| -> Vec<(AppId, NodeId)> {
            allocs.iter().map(|a| (a.app, a.container.node)).collect()
        };
        assert_eq!(key(&f), key(&c));
    }

    #[test]
    fn capacity_two_queues_split_fairly() {
        let mut c = cluster(2, 2); // 4 containers total
        let mut cs = CapacityScheduler::with_queues(vec![
            QueueConfig {
                name: "a".into(),
                capacity: 0.5,
            },
            QueueConfig {
                name: "b".into(),
                capacity: 0.5,
            },
        ]);
        let mut a0 = app(0);
        a0.queue = 0;
        let mut a1 = app(1);
        a1.queue = 1;
        ask_any(&mut a0, Priority::MAP, 4);
        ask_any(&mut a1, Priority::MAP, 4);
        let mut apps = vec![a0, a1];
        let allocs = cs.assign(&mut c, &mut apps, &mut ContainerIdGen::default());
        assert_eq!(allocs.len(), 4);
        let to_a0 = allocs.iter().filter(|a| a.app == AppId(0)).count();
        assert_eq!(to_a0, 2, "capacity split should be even");
    }

    #[test]
    fn fair_scheduler_splits_between_apps() {
        let mut c = cluster(2, 2); // 4 containers
        let mut apps = vec![app(0), app(1)];
        ask_any(&mut apps[0], Priority::MAP, 4);
        ask_any(&mut apps[1], Priority::MAP, 4);
        let allocs = FairScheduler.assign(&mut c, &mut apps, &mut ContainerIdGen::default());
        assert_eq!(allocs.len(), 4);
        let to_a0 = allocs.iter().filter(|a| a.app == AppId(0)).count();
        assert_eq!(to_a0, 2, "fair split expected, got {to_a0}/4 for app0");
    }

    #[test]
    fn fair_scheduler_respects_priorities_within_an_app() {
        let mut c = cluster(1, 2);
        let mut apps = vec![app(0)];
        ask_any(&mut apps[0], Priority::REDUCE, 2);
        ask_any(&mut apps[0], Priority::MAP, 1);
        let allocs = FairScheduler.assign(&mut c, &mut apps, &mut ContainerIdGen::default());
        assert_eq!(allocs[0].container.priority, Priority::MAP);
        assert_eq!(allocs[1].container.priority, Priority::REDUCE);
    }

    #[test]
    fn any_scheduler_dispatches() {
        let mut c = cluster(1, 1);
        let mut apps = vec![app(0)];
        ask_any(&mut apps[0], Priority::MAP, 1);
        let mut s = AnyScheduler::Fair(FairScheduler);
        let allocs = s.assign(&mut c, &mut apps, &mut ContainerIdGen::default());
        assert_eq!(allocs.len(), 1);
    }

    #[test]
    fn finished_apps_are_skipped() {
        let mut c = cluster(1, 1);
        let mut apps = vec![app(0)];
        ask_any(&mut apps[0], Priority::MAP, 1);
        apps[0].finished = true;
        let allocs = FifoScheduler.assign(&mut c, &mut apps, &mut ContainerIdGen::default());
        assert!(allocs.is_empty());
    }
}
