//! # yarn-sim — YARN substrate simulator
//!
//! The resource-management layer of Hadoop 2.x, as described in §3 of the
//! paper: a global [`ResourceManager`] arbitrating cluster capacity, per-
//! node bookkeeping ([`node::NodeState`]), the AM↔RM
//! [`request::ResourceRequest`] protocol with priorities and locality
//! (paper Table 1), container lifecycles, and two schedulers —
//! [`scheduler::FifoScheduler`] and the [`scheduler::CapacityScheduler`]
//! (the Hadoop default; with a single root queue it serves applications in
//! FIFO order, the configuration the paper's model assumes).
//!
//! The crate is deliberately *time-free*: it is a deterministic state
//! machine driven by `mapreduce-sim`'s event loop, which makes every
//! scheduling rule unit-testable in isolation.

pub mod container;
pub mod node;
pub mod request;
pub mod resources;
pub mod rm;
pub mod scheduler;

pub use container::{Container, ContainerId, ContainerState};
pub use node::{ClusterState, NodeState};
pub use request::{render_table1, AskTable, Location, MatchLevel, Priority, ResourceRequest};
pub use resources::ResourceVector;
pub use rm::{AllocateResponse, AppId, ResourceManager};
pub use scheduler::{
    Allocation, AnyScheduler, AppSchedulingState, CapacityScheduler, ContainerIdGen, FairScheduler,
    FifoScheduler, QueueConfig, Scheduler,
};
