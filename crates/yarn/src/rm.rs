//! The ResourceManager: application registry, the allocate heartbeat, and
//! container accounting.
//!
//! The RM here is *time-free*: it is a deterministic state machine invoked
//! by the simulation driver at event times. An AM interacts exactly as in
//! YARN (§3.2–3.3 of the paper): register, send `allocate` heartbeats
//! carrying absolute [`ResourceRequest`] updates and releases, pick up
//! granted containers from the response, and unregister when done.

use crate::container::{Container, ContainerId, ContainerState};
use crate::node::ClusterState;
use crate::request::{AskTable, MatchLevel, ResourceRequest};
use crate::resources::ResourceVector;
use crate::scheduler::{AppSchedulingState, ContainerIdGen, Scheduler};
use std::collections::HashMap;
use std::fmt;

/// Application identifier, in submission order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AppId(pub u32);

impl fmt::Display for AppId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "application_{:04}", self.0)
    }
}

/// What an AM gets back from an allocate heartbeat.
#[derive(Debug, Default)]
pub struct AllocateResponse {
    /// Freshly granted containers (now `Acquired`), with match levels.
    pub allocated: Vec<(Container, MatchLevel)>,
    /// Containers that completed since the last heartbeat.
    pub completed: Vec<ContainerId>,
}

/// The global ResourceManager (one per cluster).
pub struct ResourceManager<S: Scheduler> {
    cluster: ClusterState,
    scheduler: S,
    apps: Vec<AppSchedulingState>,
    /// Granted but not yet picked up, per app.
    pending_pickup: HashMap<AppId, Vec<(Container, MatchLevel)>>,
    /// Completed since last heartbeat, per app.
    completed_since: HashMap<AppId, Vec<ContainerId>>,
    /// Live containers: id → (owner, node, size).
    live: HashMap<ContainerId, (AppId, hdfs_sim::NodeId, ResourceVector)>,
    ids: ContainerIdGen,
}

impl<S: Scheduler> ResourceManager<S> {
    /// A fresh RM over `cluster` using `scheduler`.
    pub fn new(cluster: ClusterState, scheduler: S) -> Self {
        ResourceManager {
            cluster,
            scheduler,
            apps: Vec::new(),
            pending_pickup: HashMap::new(),
            completed_since: HashMap::new(),
            live: HashMap::new(),
            ids: ContainerIdGen::default(),
        }
    }

    /// Register a new application in `queue` (index into the scheduler's
    /// queue list; 0 for the single root queue).
    pub fn submit_application(&mut self, queue: usize) -> AppId {
        let id = AppId(self.apps.len() as u32);
        self.apps.push(AppSchedulingState {
            app: id,
            queue,
            ask: AskTable::new(),
            used: ResourceVector::ZERO,
            finished: false,
        });
        id
    }

    /// The AM heartbeat: apply ask updates and releases, run a scheduling
    /// pass, and hand back grants and completions.
    pub fn allocate(
        &mut self,
        app: AppId,
        requests: &[ResourceRequest],
        releases: &[ContainerId],
    ) -> AllocateResponse {
        {
            let state = self.app_mut(app);
            for r in requests {
                state.ask.update(r);
            }
        }
        for &cid in releases {
            self.finish_container(cid);
        }
        self.schedule();
        AllocateResponse {
            allocated: self.pending_pickup.remove(&app).unwrap_or_default(),
            completed: self.completed_since.remove(&app).unwrap_or_default(),
        }
    }

    /// Run one scheduling pass; grants become pickable on the next
    /// heartbeat of each AM. Returns the number of granted containers.
    pub fn schedule(&mut self) -> usize {
        let allocs = self
            .scheduler
            .assign(&mut self.cluster, &mut self.apps, &mut self.ids);
        let n = allocs.len();
        for mut a in allocs {
            a.container.transition(ContainerState::Acquired);
            self.live.insert(
                a.container.id,
                (a.app, a.container.node, a.container.resource),
            );
            self.pending_pickup
                .entry(a.app)
                .or_default()
                .push((a.container, a.level));
        }
        n
    }

    /// NodeManager reports a container finished (or the AM killed it):
    /// release its resources and queue the completion notice for its AM.
    pub fn finish_container(&mut self, id: ContainerId) {
        if let Some((app, node, size)) = self.live.remove(&id) {
            self.cluster.node_mut(node).release(id, size);
            self.app_mut(app).used = self.app_mut(app).used.saturating_sub(&size);
            self.completed_since.entry(app).or_default().push(id);
        }
    }

    /// Deregister an application; its pending ask is dropped and its live
    /// containers are reclaimed.
    pub fn unregister_application(&mut self, app: AppId) {
        let live: Vec<ContainerId> = self
            .live
            .iter()
            .filter(|(_, &(a, _, _))| a == app)
            .map(|(&id, _)| id)
            .collect();
        for id in live {
            self.finish_container(id);
        }
        let state = self.app_mut(app);
        state.finished = true;
        state.ask = AskTable::new();
        self.pending_pickup.remove(&app);
    }

    /// Cluster state (read-only).
    pub fn cluster(&self) -> &ClusterState {
        &self.cluster
    }

    /// Number of live containers.
    pub fn live_containers(&self) -> usize {
        self.live.len()
    }

    /// Current outstanding ask of an application (for tests/inspection).
    pub fn ask_of(&self, app: AppId) -> &AskTable {
        &self.apps[app.0 as usize].ask
    }

    fn app_mut(&mut self, app: AppId) -> &mut AppSchedulingState {
        &mut self.apps[app.0 as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::{Location, Priority};
    use crate::scheduler::FifoScheduler;
    use hdfs_sim::Topology;

    fn rm(nodes: usize, containers_per_node: u32) -> ResourceManager<FifoScheduler> {
        let cluster = ClusterState::homogeneous(
            Topology::single_rack(nodes),
            ResourceVector::new(1024 * containers_per_node as u64, containers_per_node),
        );
        ResourceManager::new(cluster, FifoScheduler)
    }

    fn any_req(p: Priority, n: u32) -> ResourceRequest {
        ResourceRequest {
            num_containers: n,
            priority: p,
            capability: ResourceVector::new(1024, 1),
            location: Location::Any,
            relax_locality: true,
        }
    }

    #[test]
    fn allocate_heartbeat_roundtrip() {
        let mut rm = rm(2, 2);
        let app = rm.submit_application(0);
        let resp = rm.allocate(app, &[any_req(Priority::MAP, 3)], &[]);
        assert_eq!(resp.allocated.len(), 3);
        assert!(resp.completed.is_empty());
        assert_eq!(rm.live_containers(), 3);
        // Remaining ask: 0 (all granted).
        assert_eq!(rm.ask_of(app).outstanding(Priority::MAP), 0);
    }

    #[test]
    fn deferred_grant_on_capacity() {
        let mut rm = rm(1, 2);
        let app = rm.submit_application(0);
        let resp = rm.allocate(app, &[any_req(Priority::MAP, 3)], &[]);
        assert_eq!(resp.allocated.len(), 2, "only 2 fit");
        let ids: Vec<ContainerId> = resp.allocated.iter().map(|(c, _)| c.id).collect();
        // Finish one container; the pending request is served on the next
        // scheduling opportunity, picked up at the next heartbeat.
        rm.finish_container(ids[0]);
        let resp2 = rm.allocate(app, &[], &[]);
        assert_eq!(resp2.allocated.len(), 1);
        assert_eq!(resp2.completed, vec![ids[0]]);
    }

    #[test]
    fn fifo_across_applications() {
        let mut rm = rm(1, 2);
        let app0 = rm.submit_application(0);
        let app1 = rm.submit_application(0);
        // Both ask before any scheduling runs: update asks without
        // triggering allocation for app1 first.
        let r0 = rm.allocate(app0, &[any_req(Priority::MAP, 2)], &[]);
        assert_eq!(r0.allocated.len(), 2);
        let r1 = rm.allocate(app1, &[any_req(Priority::MAP, 2)], &[]);
        assert!(r1.allocated.is_empty(), "app0 holds the cluster");
        // app0 finishes everything → app1 gets served.
        rm.unregister_application(app0);
        let r1b = rm.allocate(app1, &[], &[]);
        assert_eq!(r1b.allocated.len(), 2);
    }

    #[test]
    fn unregister_reclaims_resources() {
        let mut rm = rm(2, 2);
        let app = rm.submit_application(0);
        rm.allocate(app, &[any_req(Priority::MAP, 4)], &[]);
        assert_eq!(rm.live_containers(), 4);
        rm.unregister_application(app);
        assert_eq!(rm.live_containers(), 0);
        let avail = rm.cluster().total_available();
        assert_eq!(avail, ResourceVector::new(4096, 4));
    }

    #[test]
    fn release_via_heartbeat() {
        let mut rm = rm(1, 1);
        let app = rm.submit_application(0);
        let resp = rm.allocate(app, &[any_req(Priority::MAP, 1)], &[]);
        let cid = resp.allocated[0].0.id;
        let resp2 = rm.allocate(app, &[], &[cid]);
        assert_eq!(resp2.completed, vec![cid]);
        assert_eq!(rm.live_containers(), 0);
    }
}
