//! Property-based tests (proptest) over the model's core invariants.

use hadoop2_perf::model::input::TaskClass;
use hadoop2_perf::model::timeline::{build_timeline, ShuffleSpec, TimelineConfig, TimelineJob};
use hadoop2_perf::model::tree::{build_tree, waves};
use hadoop2_perf::model::{solve, ClusterInputs, JobClassInputs, ModelInput, ModelOptions};
use proptest::prelude::*;

fn arb_timeline_job() -> impl Strategy<Value = TimelineJob> {
    (1u32..20, 0u32..6, 1.0f64..100.0, 0.5f64..50.0, 0.0f64..30.0).prop_map(
        |(m, r, map_d, merge_d, ss_d)| TimelineJob {
            num_maps: m,
            num_reduces: r,
            map_duration: map_d,
            merge_duration: merge_d,
            shuffle: ShuffleSpec::Fixed(ss_d),
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// No node ever runs more concurrent segments than it has containers.
    #[test]
    fn timeline_respects_container_capacity(
        jobs in prop::collection::vec(arb_timeline_job(), 1..4),
        nodes in 1usize..6,
        cap in 1u32..5,
        slow_start in any::<bool>(),
    ) {
        let cfg = TimelineConfig { capacities: vec![cap; nodes], slow_start };
        let tl = build_timeline(&cfg, &jobs);
        // Sweep events per node. Reduce segments (shuffle-sort + merge)
        // share one container, so count by (job, class-group, index).
        let mut events: Vec<(f64, i32, u32)> = Vec::new();
        for s in &tl.segments {
            // Merge shares the shuffle-sort container; only count the
            // shuffle-sort start and the merge end for reduces.
            match s.class {
                TaskClass::Map => {
                    events.push((s.start, 1, s.node));
                    events.push((s.end, -1, s.node));
                }
                TaskClass::ShuffleSort => events.push((s.start, 1, s.node)),
                TaskClass::Merge => events.push((s.end, -1, s.node)),
            }
        }
        events.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        let mut per_node = vec![0i32; nodes];
        for (_, delta, node) in events {
            per_node[node as usize] += delta;
            prop_assert!(
                per_node[node as usize] <= cap as i32,
                "node {node} exceeded {cap} containers"
            );
            prop_assert!(per_node[node as usize] >= 0);
        }
    }

    /// FIFO: a later job's first task never starts before an earlier
    /// job's first task.
    #[test]
    fn timeline_is_fifo(
        jobs in prop::collection::vec(arb_timeline_job(), 2..4),
        nodes in 1usize..4,
    ) {
        let cfg = TimelineConfig { capacities: vec![2; nodes], slow_start: true };
        let tl = build_timeline(&cfg, &jobs);
        for j in 1..jobs.len() as u32 {
            prop_assert!(tl.job_start(j) >= tl.job_start(j - 1) - 1e-9);
        }
    }

    /// Waves partition the segments, preserve start-time ordering across
    /// waves, and the wave tree has exactly one leaf per segment.
    #[test]
    fn waves_partition_and_tree_covers(
        job in arb_timeline_job(),
        nodes in 1usize..5,
        cap in 1u32..4,
    ) {
        let cfg = TimelineConfig { capacities: vec![cap; nodes], slow_start: true };
        let tl = build_timeline(&cfg, &[job]);
        let idx: Vec<usize> = (0..tl.segments.len()).collect();
        let ws = waves(&tl, idx.clone());
        let flat: Vec<usize> = ws.iter().flatten().copied().collect();
        let mut sorted = flat.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, idx.clone(), "waves must partition the segments");
        for w in ws.windows(2) {
            let max_start_prev = w[0].iter().map(|&i| tl.segments[i].start).fold(f64::MIN, f64::max);
            let min_start_next = w[1].iter().map(|&i| tl.segments[i].start).fold(f64::MAX, f64::min);
            prop_assert!(min_start_next >= max_start_prev - 1e-9);
        }
        let tree = build_tree(&tl, None, true).unwrap();
        prop_assert_eq!(tree.num_leaves(), tl.segments.len());
        let chain = build_tree(&tl, None, false).unwrap();
        prop_assert!(tree.depth() <= chain.depth());
    }

    /// The solver always terminates with a positive, finite estimate, and
    /// the estimate never falls below the longest single class duration.
    #[test]
    fn solver_output_is_sane(
        m in 1u32..24,
        r in 0u32..6,
        nodes in 1usize..6,
        cpu_demand in 1.0f64..60.0,
        disk_demand in 0.1f64..10.0,
    ) {
        let job = JobClassInputs {
            num_maps: m,
            num_reduces: r,
            demands: [
                [cpu_demand, disk_demand, 0.1],
                [0.0, 0.2, 1.0],
                [0.5, 2.0, 0.3],
            ],
            initial_response: [cpu_demand + disk_demand, 1.5, 3.0],
            cv: [0.3, 0.5, 0.3],
            shuffle_per_map: 0.2,
            overhead: [1.0, 1.0, 0.0],
        };
        let input = ModelInput {
            cluster: ClusterInputs {
                num_nodes: nodes,
                cpu_per_node: 4,
                disk_per_node: 1,
                max_maps_per_node: 3,
                max_reduce_per_node: 3,
                reserved_containers: 1,
            },
            jobs: vec![job],
            options: ModelOptions::default(),
        };
        let out = solve(&input);
        prop_assert!(out.avg_response.is_finite());
        prop_assert!(out.avg_response > 0.0);
        prop_assert!(out.iterations >= 1);
        // Response at least covers one map's contention-adjusted duration.
        prop_assert!(out.avg_response >= out.durations[0][0] * 0.99);
    }
}
