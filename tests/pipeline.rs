//! Cross-crate pipeline tests: HDFS → YARN → MapReduce simulator →
//! profile → calibration → model, exercised through the public facade.

use hadoop2_perf::hdfs::{splits_for_file, DefaultPlacement, Namespace, Topology};
use hadoop2_perf::model::timeline::{build_timeline, ShuffleSpec, TimelineConfig, TimelineJob};
use hadoop2_perf::model::tree::build_tree;
use hadoop2_perf::model::{job_inputs, model_input, solve, Calibration, ModelOptions};
use hadoop2_perf::sim::profile::{profile_job, MeasuredProfile};
use hadoop2_perf::sim::workload::wordcount;
use hadoop2_perf::sim::{ClusterSim, SimConfig, GB, MB};
use rand::rngs::SmallRng;
use rand::SeedableRng;

#[test]
fn hdfs_splits_feed_the_map_count() {
    let topo = Topology::single_rack(4);
    let mut ns = Namespace::new(3);
    let mut rng = SmallRng::seed_from_u64(1);
    let file = ns.create_file(
        &topo,
        &DefaultPlacement,
        "/in",
        GB,
        128 * MB,
        None,
        &mut rng,
    );
    let splits = splits_for_file(file);
    assert_eq!(splits.len(), 8);

    let spec = wordcount(GB, 4);
    let cfg = SimConfig::paper_testbed(4);
    let inputs = job_inputs(&cfg, &spec, &Calibration::default(), None);
    assert_eq!(inputs.num_maps as usize, splits.len());
}

#[test]
fn simulator_profile_feeds_the_model() {
    let cfg = SimConfig::paper_testbed(2);
    let spec = wordcount(512 * MB, 2);
    let (profile, result) = profile_job(&spec, &cfg);
    assert_eq!(profile.num_maps, 4);
    assert!(profile.response_time > 0.0);

    let input = model_input(
        &cfg,
        &spec,
        1,
        ModelOptions::default(),
        &Calibration::default(),
        Some(&profile),
    );
    // The measured map CV flows into the model (floored by calibration).
    assert!(input.jobs[0].cv[0] >= Calibration::default().cv[0]);
    let solved = solve(&input);
    assert!(solved.converged);
    // The model estimate lands in the same order of magnitude as the run.
    let ratio = solved.avg_response / result.response_time();
    assert!(
        (0.5..2.5).contains(&ratio),
        "model {:.1} vs run {:.1}",
        solved.avg_response,
        result.response_time()
    );
}

#[test]
fn profile_from_any_result_is_consistent() {
    let cfg = SimConfig::paper_testbed(2);
    let spec = wordcount(256 * MB, 1);
    let mut sim = ClusterSim::new(cfg);
    sim.add_job(spec, 0.0);
    let results = sim.run();
    let p = MeasuredProfile::from_result(&results[0]);
    assert_eq!(p.num_maps, 2);
    assert_eq!(p.num_reduces, 1);
    assert!(p.map.mean > 0.0);
    assert!((p.response_time - results[0].response_time()).abs() < 1e-12);
}

#[test]
fn model_timeline_matches_simulator_in_contention_free_case() {
    // One map, one node, no jitter: the simulator's map duration should be
    // close to the model's unloaded map demand + overheads.
    let mut cfg = SimConfig::paper_testbed(1);
    cfg.jitter_cv = 0.0;
    let spec = wordcount(128 * MB, 0);
    let (profile, _) = profile_job(&spec, &cfg);
    let inputs = job_inputs(&cfg, &spec, &Calibration::default(), None);
    let unloaded: f64 = inputs.demands[0].iter().sum();
    let rel = (profile.map.mean - unloaded).abs() / unloaded;
    assert!(
        rel < 0.10,
        "sim map {:.1}s vs unloaded model demand {:.1}s",
        profile.map.mean,
        unloaded
    );
}

#[test]
fn running_example_tree_is_reproducible_through_the_facade() {
    let tl = build_timeline(
        &TimelineConfig {
            capacities: vec![1; 3],
            slow_start: true,
        },
        &[TimelineJob {
            num_maps: 4,
            num_reduces: 1,
            map_duration: 10.0,
            merge_duration: 6.0,
            shuffle: ShuffleSpec::PerRemoteMap { sd: 2.0, base: 1.0 },
        }],
    );
    let tree = build_tree(&tl, None, true).unwrap();
    assert_eq!(tree.num_leaves(), 6);
    assert_eq!(tl.makespan(), 23.0);
}
