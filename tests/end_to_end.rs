//! End-to-end validation: the analytic model against the simulated
//! cluster, on configurations small enough for CI.

use hadoop2_perf::model::{estimate_workload, relative_error, Calibration, ModelOptions};
use hadoop2_perf::sim::profile::{measure_workload, profile_job};
use hadoop2_perf::sim::workload::wordcount;
use hadoop2_perf::sim::{SimConfig, GB, MB};

fn point(nodes: usize, input: u64, jobs: usize) -> (f64, f64, f64) {
    let cfg = SimConfig::paper_testbed(nodes);
    let spec = wordcount(input, nodes as u32);
    let measured = measure_workload(&spec, &cfg, jobs, 3).median_response;
    let (profile, _) = profile_job(&spec, &cfg);
    let est = estimate_workload(
        &cfg,
        &spec,
        jobs,
        &ModelOptions::default(),
        &Calibration::default(),
        Some(&profile),
    );
    (measured, est.fork_join, est.tripathi)
}

#[test]
fn model_tracks_simulator_within_reason() {
    let (measured, fj, tr) = point(4, GB, 1);
    let fj_err = relative_error(fj, measured);
    let tr_err = relative_error(tr, measured);
    // The paper's qualitative claims: both estimators overestimate, and
    // stay within a moderate band of the measurement.
    assert!(
        fj_err > -0.05,
        "fork/join should not underestimate: {fj_err:.2}"
    );
    assert!(
        tr_err > -0.05,
        "tripathi should not underestimate: {tr_err:.2}"
    );
    assert!(fj_err < 0.40, "fork/join error too large: {fj_err:.2}");
    assert!(tr_err < 0.50, "tripathi error too large: {tr_err:.2}");
}

#[test]
fn node_scaling_shape_holds() {
    // Fig. 12's shape: more nodes → lower response, in both the
    // measurement and the model.
    let (m4, f4, _) = point(4, 2 * GB, 1);
    let (m8, f8, _) = point(8, 2 * GB, 1);
    assert!(
        m8 < m4,
        "measured should drop with nodes: {m4:.1} → {m8:.1}"
    );
    assert!(
        f8 < f4,
        "estimate should drop with nodes: {f4:.1} → {f8:.1}"
    );
}

#[test]
fn job_scaling_shape_holds() {
    // Fig. 14's shape: more concurrent jobs → higher average response.
    let (m1, f1, _) = point(4, GB, 1);
    let (m3, f3, _) = point(4, GB, 3);
    assert!(m3 > 1.2 * m1, "measured contention: {m1:.1} → {m3:.1}");
    assert!(f3 > 1.3 * f1, "modeled contention: {f1:.1} → {f3:.1}");
}

#[test]
fn more_maps_do_not_break_the_model() {
    // Fig. 15's configuration idea: halving the block size doubles the
    // maps; the model must still converge and stay in band.
    let cfg = {
        let mut c = SimConfig::paper_testbed(4);
        c.block_size = 64 * MB;
        c
    };
    let spec = wordcount(GB, 4); // 16 maps at 64 MB
    let measured = measure_workload(&spec, &cfg, 1, 3).median_response;
    let (profile, _) = profile_job(&spec, &cfg);
    let est = estimate_workload(
        &cfg,
        &spec,
        1,
        &ModelOptions::default(),
        &Calibration::default(),
        Some(&profile),
    );
    assert!(est.fork_join_detail.converged);
    let err = relative_error(est.fork_join, measured);
    assert!(err.abs() < 0.45, "64 MB-block error out of band: {err:.2}");
}

#[test]
fn baselines_are_worse_than_the_model_on_average() {
    // Herodotou's static sum ignores queueing entirely; across a node
    // sweep its error should exceed fork/join's.
    let mut fj_total = 0.0;
    let mut hero_total = 0.0;
    for (nodes, input) in [(4usize, GB), (8, GB), (4, 5 * GB)] {
        let cfg = SimConfig::paper_testbed(nodes);
        let spec = wordcount(input, nodes as u32);
        let measured = measure_workload(&spec, &cfg, 1, 3).median_response;
        let est = estimate_workload(
            &cfg,
            &spec,
            1,
            &ModelOptions::default(),
            &Calibration::default(),
            None,
        );
        fj_total += relative_error(est.fork_join, measured).abs();
        hero_total += relative_error(est.herodotou, measured).abs();
    }
    assert!(
        fj_total < hero_total,
        "fork/join ({:.2}) should beat the static baseline ({:.2})",
        fj_total / 3.0,
        hero_total / 3.0
    );
}
