//! Reproducibility: identical seeds produce identical simulations, and
//! the analytic model is seed-free.

use hadoop2_perf::model::{estimate_workload, Calibration, ModelOptions};
use hadoop2_perf::sim::workload::wordcount;
use hadoop2_perf::sim::{ClusterSim, SimConfig, MB};

#[test]
fn simulator_is_bit_reproducible() {
    let run = || {
        let mut sim = ClusterSim::new(SimConfig {
            seed: 1234,
            ..SimConfig::paper_testbed(3)
        });
        for _ in 0..2 {
            sim.add_job(wordcount(512 * MB, 3), 0.0);
        }
        sim.run()
            .iter()
            .map(|r| (r.response_time(), r.finished_at))
            .collect::<Vec<_>>()
    };
    assert_eq!(run(), run());
}

#[test]
fn simulator_events_are_reproducible() {
    let events = |seed| {
        let mut sim = ClusterSim::new(SimConfig {
            seed,
            ..SimConfig::paper_testbed(2)
        });
        sim.add_job(wordcount(256 * MB, 2), 0.0);
        sim.run();
        sim.events_processed()
    };
    assert_eq!(events(7), events(7));
}

#[test]
fn model_is_deterministic() {
    let est = || {
        let cfg = SimConfig::paper_testbed(4);
        let spec = wordcount(MB * 1024, 4);
        let e = estimate_workload(
            &cfg,
            &spec,
            2,
            &ModelOptions::default(),
            &Calibration::default(),
            None,
        );
        (e.fork_join, e.tripathi, e.aria, e.herodotou)
    };
    assert_eq!(est(), est());
}
